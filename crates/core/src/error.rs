//! The typed error of the bisection stack.
//!
//! Every fallible operation in this crate reports a [`BisectError`]
//! instead of panicking: pipeline construction ([`crate::pipeline`]),
//! fallible initial partitioners (the exact solver refusing oversized
//! graphs), side-vector mismatches, and invalid recursive part counts.
//! The bench harness wraps it (together with the generators'
//! `GenError`) and propagates everything up to the `repro` CLI, which
//! renders the message and exits nonzero — no `unwrap` between an
//! invalid input and the user.

use std::error::Error;
use std::fmt;

use bisect_graph::GraphError;

use crate::exact::TooLargeError;
use crate::partition::SideLengthError;

/// Errors from constructing or running a bisection pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BisectError {
    /// A structural graph error surfaced mid-pipeline (edge out of
    /// range, parse failure, …).
    Graph(GraphError),
    /// A pipeline configuration was rejected (message explains which
    /// constraint failed, e.g. a coarsest size below 2).
    InvalidConfig(String),
    /// The exact solver was asked for a graph beyond its search limit.
    TooLarge {
        /// Vertices in the offending graph.
        vertices: usize,
        /// The solver's limit.
        limit: usize,
    },
    /// A side vector did not match the graph's vertex count.
    SideLength {
        /// Length of the supplied side vector.
        len: usize,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// A recursive partition was asked for a part count that is not a
    /// positive power of two.
    InvalidPartCount {
        /// The rejected count.
        parts: usize,
    },
}

impl fmt::Display for BisectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectError::Graph(e) => write!(f, "graph error: {e}"),
            BisectError::InvalidConfig(message) => {
                write!(f, "invalid pipeline configuration: {message}")
            }
            BisectError::TooLarge { vertices, limit } => write!(
                f,
                "graph with {vertices} vertices exceeds the exact solver's limit of {limit}"
            ),
            BisectError::SideLength { len, num_vertices } => write!(
                f,
                "side vector of length {len} does not match graph on {num_vertices} vertices"
            ),
            BisectError::InvalidPartCount { parts } => {
                write!(f, "part count must be a positive power of two, got {parts}")
            }
        }
    }
}

impl Error for BisectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BisectError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BisectError {
    fn from(e: GraphError) -> BisectError {
        BisectError::Graph(e)
    }
}

impl From<TooLargeError> for BisectError {
    fn from(e: TooLargeError) -> BisectError {
        BisectError::TooLarge {
            vertices: e.num_vertices,
            limit: crate::exact::MAX_VERTICES,
        }
    }
}

impl From<SideLengthError> for BisectError {
    fn from(e: SideLengthError) -> BisectError {
        BisectError::SideLength {
            len: e.got,
            num_vertices: e.expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(
            BisectError::InvalidConfig("coarsest size must be at least 2".into())
                .to_string()
                .contains("coarsest size")
        );
        assert!(BisectError::TooLarge {
            vertices: 99,
            limit: 40
        }
        .to_string()
        .contains("99"));
        assert!(BisectError::SideLength {
            len: 3,
            num_vertices: 4
        }
        .to_string()
        .contains("length 3"));
        assert!(BisectError::InvalidPartCount { parts: 6 }
            .to_string()
            .contains("power of two"));
    }

    #[test]
    fn graph_error_chains_as_source() {
        let e = BisectError::from(GraphError::ZeroWeight);
        assert!(e.to_string().contains("graph error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BisectError>();
    }
}
