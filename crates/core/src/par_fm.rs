//! Coarse-grained parallel refinement for million-vertex instances.
//!
//! [`ParallelFm`] partitions the vertex set into contiguous ranges, lets
//! one worker per range run a greedy positive-gain FM sweep against a
//! *snapshot* of the bisection (Gauss–Seidel within a range, Jacobi
//! across ranges), then merges the proposed moves serially: sorted by
//! `(gain desc, vertex asc)`, each proposal is re-validated against the
//! *live* bisection and applied only if it still has positive gain and
//! respects the FM balance tolerance. A best-balanced-prefix rollback —
//! the same discipline as [`crate::fm::FiducciaMattheyses`] — guarantees
//! the round ends balanced with a cut no larger than it started.
//!
//! # Determinism contract
//!
//! `ParallelFm` draws **no randomness** and is **deterministic at a
//! fixed thread count**: the ranges are a pure function of `(n,
//! threads)`, each worker's sweep is a pure function of its range and
//! the snapshot, [`bisect_par::par_map_with`] returns results in index
//! order, and the merge order is a total order. Two runs with the same
//! graph, starting bisection, and thread count produce bit-identical
//! partitions. Unlike the serial refiners it is **not** bit-identical
//! across *different* thread counts — the range boundaries change which
//! local interactions each worker sees. The golden-pinned serial paths
//! (`KL`, `SA`, `FM`, and every pipeline built from them) are unaffected
//! by this module.
//!
//! # Boundary-seeded mode
//!
//! [`ParallelFm::with_boundary_seeds`] switches the propose phase from
//! full contiguous vertex ranges to the current *cut boundary* tracked
//! by the workspace [`GainCache`]: workers sweep contiguous chunks of
//! the sorted boundary list, read their starting gains straight from
//! the cache (no per-round `O(V + E)` gain walks), and the serial
//! resolve re-validates each proposal with a cached `O(1)` gain lookup
//! instead of an `O(deg)` recomputation, keeping the cache exact as
//! moves land. A round costs `O(boundary·deg)` rather than `O(V + E)`.
//! The mode draws no randomness and keeps the fixed-thread-count
//! determinism contract (the chunking is a pure function of the sorted
//! boundary and the thread count); it is a separate, explicitly tested
//! configuration — the default full-range mode is bit-identical to
//! what it always was.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bisect_graph::{Graph, VertexId};
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::gain_cache::GainCache;
use crate::partition::{Bisection, Side};
use crate::seed;
use crate::workspace::Workspace;

/// Boundary-partitioned parallel Fiduccia–Mattheyses refinement.
///
/// Rounds of *propose in parallel, resolve serially* run until a round
/// fails to improve the cut (or `max_rounds` is hit). See the module
/// docs for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelFm {
    /// Worker count; `None` defers to [`bisect_par::num_threads`].
    threads: Option<usize>,
    /// Safety cap on propose/resolve rounds.
    max_rounds: usize,
    /// Propose from the tracked cut boundary instead of all vertex
    /// ranges (see the module docs).
    boundary_seeds: bool,
}

impl Default for ParallelFm {
    fn default() -> ParallelFm {
        ParallelFm::new()
    }
}

impl ParallelFm {
    /// Creates the refiner with the process-default thread count and a
    /// generous round cap (rounds strictly decrease the cut, so the cap
    /// only guards against pathological inputs).
    pub fn new() -> ParallelFm {
        ParallelFm {
            threads: None,
            max_rounds: 64,
            boundary_seeds: false,
        }
    }

    /// Switches to boundary-seeded proposing (see the module docs):
    /// rounds sweep only the tracked cut boundary and keep the
    /// workspace gain cache exact, costing `O(boundary·deg)` instead of
    /// `O(V + E)` per round. Supports the projected-cache protocol
    /// ([`Refiner::refine_projected_counted`]).
    pub fn with_boundary_seeds(mut self) -> ParallelFm {
        self.boundary_seeds = true;
        self
    }

    /// Pins the worker (and range) count. The determinism regression
    /// tests use this to compare repeat runs at a fixed width.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> ParallelFm {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// Caps the number of propose/resolve rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> ParallelFm {
        assert!(max_rounds > 0, "need at least one round");
        self.max_rounds = max_rounds;
        self
    }

    /// The worker count a call will use right now.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(bisect_par::num_threads)
    }

    /// One propose/resolve round. Returns `(cut improvement, gain
    /// evaluations)`; an improvement of zero means the round applied
    /// nothing and the refiner is done.
    fn round(&self, g: &Graph, p: &mut Bisection, threads: usize) -> (u64, u64) {
        let n = g.num_vertices();
        let t = threads.max(1).min(n);
        let chunk = n.div_ceil(t);
        let ranges = n.div_ceil(chunk);

        // Parallel propose: each worker sweeps its contiguous range
        // against the shared snapshot. Results come back in range
        // order regardless of scheduling.
        let snapshot = p.sides();
        let results = bisect_par::par_map_with(t, ranges, |k| {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(n);
            propose_range(g, snapshot, lo, hi)
        });

        let mut evals: u64 = 0;
        let mut all: Vec<(i64, VertexId)> = Vec::new();
        for (proposals, e) in results {
            evals += e;
            all.extend(proposals);
        }
        // Total merge order: best estimated gain first, vertex id as the
        // deterministic tie-break.
        all.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Serial resolve: same tolerances as the serial FM pass.
        let max_weight = g.vertices().map(|v| g.vertex_weight(v)).max().unwrap_or(1);
        let base_tol = if g.is_unit_weighted() {
            g.total_vertex_weight() % 2
        } else {
            max_weight
        };
        let pass_tol = base_tol.max(2 * max_weight);

        let start_cut = p.cut();
        let mut best_cut = start_cut;
        let mut best_prefix = 0usize;
        let mut applied: Vec<VertexId> = Vec::new();
        for &(_, v) in &all {
            // The worker's gain was an estimate against the snapshot;
            // moves applied earlier in this loop can invalidate it, so
            // re-evaluate against the live bisection.
            let live = p.gain(g, v);
            evals += 1;
            if live <= 0 {
                continue;
            }
            let w = g.vertex_weight(v) as i64;
            let imb = p.weight(Side::A) as i64 - p.weight(Side::B) as i64;
            let new_imb = if p.side(v) == Side::A {
                imb - 2 * w
            } else {
                imb + 2 * w
            };
            if new_imb.unsigned_abs() > pass_tol {
                continue;
            }
            p.move_vertex_with_gain(g, v, live);
            applied.push(v);
            if p.weight_imbalance() <= base_tol && p.cut() < best_cut {
                best_prefix = applied.len();
                best_cut = p.cut();
            }
        }
        // Roll back to the best balanced prefix (possibly empty).
        for &v in applied[best_prefix..].iter().rev() {
            p.move_vertex(g, v);
        }
        debug_assert_eq!(p.cut(), best_cut);
        debug_assert_eq!(p.cut(), p.recompute_cut(g));
        (start_cut - p.cut(), evals)
    }

    /// One boundary-seeded propose/resolve round. `cache` must be exact
    /// for `(g, p)` on entry and is exact for the updated `p` on exit.
    /// Returns `(cut improvement, gain evaluations)`.
    fn round_boundary(
        &self,
        g: &Graph,
        p: &mut Bisection,
        cache: &mut GainCache,
        threads: usize,
    ) -> (u64, u64) {
        // Chunk the boundary list by *position* — no copy, no sort,
        // O(1) membership via the cache's position index. The list
        // order is a pure function of the init state and move history,
        // so the chunking (and the whole round) stays deterministic at
        // a fixed thread count.
        let m = cache.boundary().len();
        if m == 0 {
            return (0, 0);
        }
        let t = threads.max(1).min(m);
        let chunk = m.div_ceil(t);
        let ranges = m.div_ceil(chunk);

        let snapshot = p.sides();
        let shared: &GainCache = cache;
        let results = bisect_par::par_map_with(t, ranges, |k| {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(m);
            propose_chunk(g, snapshot, shared, lo, hi)
        });

        let mut evals: u64 = 0;
        let mut all: Vec<(i64, VertexId)> = Vec::new();
        for (proposals, e) in results {
            evals += e;
            all.extend(proposals);
        }
        all.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Serial resolve, as in `round`, except the live re-validation
        // is a cached O(1) lookup and every applied (or rolled-back)
        // move is recorded so the cache stays exact round to round.
        let max_weight = g.vertices().map(|v| g.vertex_weight(v)).max().unwrap_or(1);
        let base_tol = if g.is_unit_weighted() {
            g.total_vertex_weight() % 2
        } else {
            max_weight
        };
        let pass_tol = base_tol.max(2 * max_weight);

        let start_cut = p.cut();
        let mut best_cut = start_cut;
        let mut best_prefix = 0usize;
        let mut applied: Vec<VertexId> = Vec::new();
        for &(_, v) in &all {
            let live = cache.gain(v);
            evals += 1;
            if live <= 0 {
                continue;
            }
            let w = g.vertex_weight(v) as i64;
            let imb = p.weight(Side::A) as i64 - p.weight(Side::B) as i64;
            let new_imb = if p.side(v) == Side::A {
                imb - 2 * w
            } else {
                imb + 2 * w
            };
            if new_imb.unsigned_abs() > pass_tol {
                continue;
            }
            cache.record_move(g, p, v);
            p.move_vertex_with_gain(g, v, live);
            applied.push(v);
            if p.weight_imbalance() <= base_tol && p.cut() < best_cut {
                best_prefix = applied.len();
                best_cut = p.cut();
            }
        }
        for &v in applied[best_prefix..].iter().rev() {
            cache.record_move(g, p, v);
            p.move_vertex(g, v);
        }
        debug_assert_eq!(p.cut(), best_cut);
        debug_assert_eq!(p.cut(), p.recompute_cut(g));
        (start_cut - p.cut(), evals)
    }

    /// Boundary-mode round loop shared by both refine entry points;
    /// assumes `ws.gain_cache` is exact for `(g, init)` on entry.
    fn refine_boundary_rounds(
        &self,
        g: &Graph,
        init: &mut Bisection,
        ws: &mut Workspace,
        threads: usize,
    ) -> u64 {
        let mut productive = 0u64;
        for _ in 0..self.max_rounds {
            let (improvement, evals) = self.round_boundary(g, init, &mut ws.gain_cache, threads);
            ws.add_proposals(evals);
            if improvement == 0 {
                break;
            }
            productive += 1;
        }
        productive
    }
}

/// Greedy positive-gain sweep over `lo..hi` against `snapshot`.
///
/// Gains of in-range vertices are maintained incrementally as the
/// worker's own moves land (lazy-deletion max-heap keyed by `(gain,
/// Reverse(vertex))`); out-of-range neighbors are frozen at their
/// snapshot sides. Every vertex moves at most once. Returns the moves
/// in the order they were made, each with its local gain estimate, plus
/// the number of full gain evaluations performed.
fn propose_range(
    g: &Graph,
    snapshot: &[bool],
    lo: usize,
    hi: usize,
) -> (Vec<(i64, VertexId)>, u64) {
    let len = hi - lo;
    let mut gains: Vec<i64> = Vec::with_capacity(len);
    let mut locked = vec![false; len];
    let mut heap: BinaryHeap<(i64, Reverse<VertexId>)> = BinaryHeap::new();
    let mut evals = 0u64;
    for i in 0..len {
        let v = (lo + i) as VertexId;
        let sv = snapshot[lo + i];
        let mut gain = 0i64;
        for (u, w) in g.neighbors_weighted(v) {
            if snapshot[u as usize] == sv {
                gain -= w as i64;
            } else {
                gain += w as i64;
            }
        }
        evals += 1;
        gains.push(gain);
        if gain > 0 {
            heap.push((gain, Reverse(v)));
        }
    }
    let mut proposals: Vec<(i64, VertexId)> = Vec::new();
    while let Some((gain, Reverse(v))) = heap.pop() {
        let i = v as usize - lo;
        // Lazy deletion: stale entries (locked, or superseded by a
        // fresher gain) are skipped.
        if locked[i] || gains[i] != gain {
            continue;
        }
        locked[i] = true;
        proposals.push((gain, v));
        for (u, w) in g.neighbors_weighted(v) {
            let ui = u as usize;
            if ui < lo || ui >= hi {
                continue;
            }
            let j = ui - lo;
            if locked[j] {
                continue;
            }
            // v left its snapshot side: for u on that side the edge
            // became external (+2w), for u opposite it became internal
            // (−2w). Unlocked u is still on its snapshot side.
            let delta = if snapshot[ui] == snapshot[v as usize] {
                2 * w as i64
            } else {
                -2 * (w as i64)
            };
            gains[j] += delta;
            if gains[j] > 0 {
                heap.push((gains[j], Reverse(u)));
            }
        }
    }
    (proposals, evals)
}

/// Greedy positive-gain sweep over the boundary-list positions
/// `lo..hi` against `snapshot`, with starting gains served straight
/// from the exact cache instead of adjacency walks. In-chunk neighbor
/// gains are maintained incrementally (membership and local index are
/// O(1) via [`GainCache::boundary_index`]); out-of-chunk neighbors stay
/// frozen at their snapshot sides. Every vertex moves at most once.
fn propose_chunk(
    g: &Graph,
    snapshot: &[bool],
    cache: &GainCache,
    lo: usize,
    hi: usize,
) -> (Vec<(i64, VertexId)>, u64) {
    let verts = &cache.boundary()[lo..hi];
    let len = verts.len();
    let mut gains: Vec<i64> = Vec::with_capacity(len);
    let mut locked = vec![false; len];
    let mut heap: BinaryHeap<(i64, Reverse<VertexId>)> = BinaryHeap::new();
    for &v in verts {
        let gain = cache.gain(v);
        gains.push(gain);
        if gain > 0 {
            heap.push((gain, Reverse(v)));
        }
    }
    let mut evals = len as u64;
    let mut proposals: Vec<(i64, VertexId)> = Vec::new();
    while let Some((gain, Reverse(v))) = heap.pop() {
        let i = match cache.boundary_index(v) {
            Some(b) if b >= lo && b < hi => b - lo,
            _ => {
                debug_assert!(false, "heap entries always come from the chunk");
                continue;
            }
        };
        // Lazy deletion: stale entries (locked, or superseded by a
        // fresher gain) are skipped.
        if locked[i] || gains[i] != gain {
            continue;
        }
        locked[i] = true;
        proposals.push((gain, v));
        for (u, w) in g.neighbors_weighted(v) {
            let j = match cache.boundary_index(u) {
                Some(b) if b >= lo && b < hi => b - lo,
                _ => continue,
            };
            if locked[j] {
                continue;
            }
            let delta = if snapshot[u as usize] == snapshot[v as usize] {
                2 * w as i64
            } else {
                -2 * (w as i64)
            };
            gains[j] += delta;
            evals += 1;
            if gains[j] > 0 {
                heap.push((gains[j], Reverse(u)));
            }
        }
    }
    (proposals, evals)
}

impl Bisector for ParallelFm {
    fn name(&self) -> String {
        "PFM".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.bisect_counted(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let init = seed::random_balanced(g, rng);
        self.refine_counted(g, init, rng, ws)
    }
}

impl Refiner for ParallelFm {
    fn refine(&self, g: &Graph, init: Bisection, rng: &mut dyn RngCore) -> Bisection {
        self.refine_counted(g, init, rng, &mut Workspace::new()).0
    }

    fn refine_counted(
        &self,
        g: &Graph,
        mut init: Bisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        if g.num_vertices() < 2 {
            return (init, 0);
        }
        let threads = self.threads();
        if self.boundary_seeds {
            ws.gain_cache.init(g, &init);
            let productive = self.refine_boundary_rounds(g, &mut init, ws, threads);
            return (init, productive);
        }
        let mut productive = 0u64;
        for _ in 0..self.max_rounds {
            let (improvement, evals) = self.round(g, &mut init, threads);
            ws.add_proposals(evals);
            if improvement == 0 {
                break;
            }
            productive += 1;
        }
        (init, productive)
    }

    fn wants_projected_cache(&self) -> bool {
        self.boundary_seeds
    }

    fn refine_projected_counted(
        &self,
        g: &Graph,
        mut init: Bisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        if !self.boundary_seeds {
            return self.refine_counted(g, init, rng, ws);
        }
        if g.num_vertices() < 2 {
            return (init, 0);
        }
        let threads = self.threads();
        let productive = self.refine_boundary_rounds(g, &mut init, ws, threads);
        (init, productive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refine_never_increases_cut_and_keeps_balance() {
        let g = special::grid(8, 8);
        let pfm = ParallelFm::new().with_threads(4);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let before = init.cut();
            let p = pfm.refine(&g, init, &mut rng);
            assert!(p.cut() <= before, "seed {seed}");
            assert!(p.is_balanced(&g), "seed {seed}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "seed {seed}");
        }
    }

    #[test]
    fn repeat_runs_at_fixed_threads_are_identical() {
        let g = special::grid(10, 10);
        let pfm = ParallelFm::new().with_threads(4);
        let mut rng = StdRng::seed_from_u64(42);
        let init = seed::random_balanced(&g, &mut rng);
        let mut dummy = StdRng::seed_from_u64(0);
        let a = pfm.refine(&g, init.clone(), &mut dummy);
        let b = pfm.refine(&g, init, &mut dummy);
        assert_eq!(a, b);
    }

    #[test]
    fn consumes_no_randomness_when_refining() {
        let g = special::grid(6, 6);
        let pfm = ParallelFm::new().with_threads(3);
        let mut rng = StdRng::seed_from_u64(7);
        let init = seed::random_balanced(&g, &mut rng);
        let mut probe = rng.clone();
        let _ = pfm.refine(&g, init, &mut rng);
        assert_eq!(rng.next_u64(), probe.next_u64());
    }

    #[test]
    fn improves_a_random_start_substantially() {
        let g = special::grid(16, 16);
        let pfm = ParallelFm::new().with_threads(4);
        let mut rng = StdRng::seed_from_u64(3);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let p = pfm.refine(&g, init, &mut rng);
        // A random balanced cut of the 16×16 grid is ~240; local
        // refinement should at least halve it.
        assert!(p.cut() * 2 < before, "{} -> {}", before, p.cut());
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let g = special::cycle(24);
        let pfm = ParallelFm::new().with_threads(1);
        let mut rng = StdRng::seed_from_u64(9);
        let p = pfm.bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn counts_proposals_in_workspace() {
        let g = special::grid(8, 8);
        let pfm = ParallelFm::new().with_threads(2);
        let mut rng = StdRng::seed_from_u64(11);
        let init = seed::random_balanced(&g, &mut rng);
        let mut ws = Workspace::new();
        let (_, rounds) = pfm.refine_counted(&g, init, &mut rng, &mut ws);
        assert!(rounds >= 1);
        assert!(ws.take_proposals() as usize >= g.num_vertices());
    }

    #[test]
    fn tiny_graphs_are_no_ops() {
        let g = bisect_graph::Graph::empty(1);
        let pfm = ParallelFm::new();
        let mut rng = StdRng::seed_from_u64(0);
        let init = seed::random_balanced(&g, &mut rng);
        let mut ws = Workspace::new();
        let (p, rounds) = pfm.refine_counted(&g, init, &mut rng, &mut ws);
        assert_eq!(rounds, 0);
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn boundary_mode_never_increases_cut_and_keeps_balance() {
        let g = special::grid(8, 8);
        let pfm = ParallelFm::new().with_threads(4).with_boundary_seeds();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let before = init.cut();
            let p = pfm.refine(&g, init, &mut rng);
            assert!(p.cut() <= before, "seed {seed}");
            assert!(p.is_balanced(&g), "seed {seed}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "seed {seed}");
        }
    }

    #[test]
    fn boundary_mode_repeat_runs_at_fixed_threads_are_identical() {
        let g = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(42);
        let init = seed::random_balanced(&g, &mut rng);
        let mut dummy = StdRng::seed_from_u64(0);
        for threads in [1, 4] {
            let pfm = ParallelFm::new()
                .with_threads(threads)
                .with_boundary_seeds();
            let a = pfm.refine(&g, init.clone(), &mut dummy);
            let b = pfm.refine(&g, init.clone(), &mut dummy);
            assert_eq!(a, b, "threads {threads}");
        }
    }

    #[test]
    fn boundary_mode_improves_like_full_mode() {
        let g = special::grid(16, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let full = ParallelFm::new()
            .with_threads(4)
            .refine(&g, init.clone(), &mut rng);
        let boundary = ParallelFm::new()
            .with_threads(4)
            .with_boundary_seeds()
            .refine(&g, init, &mut rng);
        assert!(full.cut() * 2 < before);
        assert!(
            boundary.cut() * 2 < before,
            "{} -> {}",
            before,
            boundary.cut()
        );
    }

    #[test]
    fn boundary_mode_leaves_cache_exact() {
        let g = special::grid(9, 7);
        let pfm = ParallelFm::new().with_threads(3).with_boundary_seeds();
        let mut ws = Workspace::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let (p, _) = pfm.refine_counted(&g, init, &mut rng, &mut ws);
            for v in g.vertices() {
                assert_eq!(ws.gain_cache().gain(v), p.gain(&g, v), "seed {seed}");
            }
        }
    }

    #[test]
    fn boundary_mode_projected_entry_matches_plain_refine() {
        let g = special::grid(8, 8);
        let pfm = ParallelFm::new().with_threads(2).with_boundary_seeds();
        assert!(pfm.wants_projected_cache());
        assert!(!ParallelFm::new().wants_projected_cache());
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let mut ws_a = Workspace::new();
            let (plain, _) = pfm.refine_counted(&g, init.clone(), &mut rng, &mut ws_a);
            let mut ws_b = Workspace::new();
            ws_b.prepare_gain_cache(&g, &init);
            let (projected, _) = pfm.refine_projected_counted(&g, init, &mut rng, &mut ws_b);
            assert_eq!(plain, projected, "seed {seed}");
        }
    }

    #[test]
    fn weighted_graphs_respect_tolerance() {
        // Coarse graphs carry vertex weights; refinement must keep the
        // weighted imbalance within the largest vertex weight.
        let mut b = bisect_graph::GraphBuilder::new(6);
        for v in 0..6u32 {
            b.set_vertex_weight(v, (v as u64 % 3) + 1).unwrap();
        }
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        let pfm = ParallelFm::new().with_threads(2);
        let mut rng = StdRng::seed_from_u64(5);
        let init = crate::seed::weight_balanced_random(&g, &mut rng);
        let balanced_before = init.is_balanced(&g);
        let p = pfm.refine(&g, init, &mut rng);
        if balanced_before {
            assert!(p.is_balanced(&g));
        }
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }
}
