//! The Kernighan-Lin graph bisection heuristic (§III, Figure 2 of the
//! paper; originally Kernighan & Lin, Bell System Tech. J. 1970).
//!
//! One *pass* over a bisection `(A, B)`:
//!
//! 1. Compute the gain `g_v` of every vertex.
//! 2. Repeatedly choose the unlocked pair `(a, b)`, `a ∈ A`, `b ∈ B`,
//!    maximizing `g_ab = g_a + g_b − 2δ(a, b)`; lock the pair, record
//!    the running total, and update the gains of unlocked vertices as
//!    if the pair had been swapped.
//! 3. After `min(|A|, |B|)` pairs, swap the prefix of pairs whose
//!    cumulative gain is maximal (if positive).
//!
//! Passes repeat until a pass yields no improvement (or a configured
//! pass limit is hit). One pass never increases the cut, and side sizes
//! are preserved exactly — swaps are balanced by construction.
//!
//! Pair selection is the expensive step. All three strategies make
//! **identical selections** (ties broken the same way), so they produce
//! identical cut trajectories; they differ only in cost:
//!
//! * [`PairSelection::Incremental`] (default) keeps per-side gain
//!   *buckets* ([`SortedBuckets`]) in a reusable
//!   [`Workspace`], scans candidate pairs in decreasing `g_a + g_b`
//!   with the exact `g_ab ≤ g_a + g_b` prune, and after locking a pair
//!   updates only the buckets of the pair's *neighbors* — no per-swap
//!   rescans and no steady-state allocation.
//! * [`PairSelection::SortedPruning`] is the earlier
//!   `BTreeSet<(gain, vertex)>` form of the same pruned scan, kept for
//!   the `ablate-klpair` benchmark.
//! * [`PairSelection::Exhaustive`] is the literal `O(|A|·|B|)` scan of
//!   Figure 2, retained as the reference the others are tested against.

use std::collections::BTreeSet;

use bisect_graph::{Graph, VertexId};
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::gain::SortedBuckets;
use crate::partition::{Bisection, Side};
use crate::seed;
use crate::workspace::Workspace;

/// How each pass picks the pair with maximal `g_ab`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairSelection {
    /// Pruned descending scan over workspace-resident gain buckets with
    /// incremental neighbor-only updates (default; fastest, and
    /// allocation-free once the workspace is warm).
    #[default]
    Incremental,
    /// The pruned descending scan over `BTreeSet` gain orders.
    SortedPruning,
    /// Evaluate every unlocked pair, as written in Figure 2.
    Exhaustive,
}

/// The Kernighan-Lin bisection algorithm.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, kl::KernighanLin};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(8, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = KernighanLin::new().bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// assert!(p.cut() <= 16); // random is ~64; KL gets close to 8
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernighanLin {
    max_passes: usize,
    pair_selection: PairSelection,
}

impl Default for KernighanLin {
    fn default() -> KernighanLin {
        KernighanLin::new()
    }
}

impl KernighanLin {
    /// KL with the default configuration: run passes to a fixpoint
    /// (bounded by a generous safety cap) using sorted-pruning pair
    /// selection.
    pub fn new() -> KernighanLin {
        KernighanLin {
            max_passes: 64,
            pair_selection: PairSelection::default(),
        }
    }

    /// Limits the number of passes ("the procedure may have a fixed
    /// number of passes or it can run until no improvement is
    /// possible").
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> KernighanLin {
        assert!(max_passes > 0, "at least one pass is required");
        self.max_passes = max_passes;
        self
    }

    /// Selects the pair-selection strategy.
    pub fn with_pair_selection(mut self, pair_selection: PairSelection) -> KernighanLin {
        self.pair_selection = pair_selection;
        self
    }

    /// Runs one KL pass in place. Returns the cut improvement achieved
    /// (0 when the pass is a fixpoint). Side sizes are preserved.
    ///
    /// Convenience wrapper over [`KernighanLin::pass_in`] with a
    /// throwaway workspace.
    pub fn pass(&self, g: &Graph, p: &mut Bisection) -> u64 {
        self.pass_in(g, p, &mut Workspace::new())
    }

    /// As [`KernighanLin::pass`], drawing every scratch array from `ws`:
    /// once the workspace has warmed up to the graph's size, the pass
    /// performs no heap allocations (with the default
    /// [`PairSelection::Incremental`]; the two reference strategies
    /// still build their own candidate structures).
    pub fn pass_in(&self, g: &Graph, p: &mut Bisection, ws: &mut Workspace) -> u64 {
        let n = g.num_vertices();
        let k_max = p.count(Side::A).min(p.count(Side::B));
        if k_max == 0 {
            return 0;
        }

        // Per-vertex gains start from the shared cache arena — the same
        // O(V + E) initialization SA maintains incrementally — and then
        // evolve as virtual-swap gains while pairs lock (the cache is
        // rebuilt by each consumer's next `init`).
        ws.gain_cache.init(g, p);
        let gains = ws.gain_cache.gains_mut();
        ws.locked.clear();
        ws.locked.resize(n, false);
        // Ordered candidate sets per side. Incremental uses the
        // workspace buckets; SortedPruning its own BTreeSets.
        let mut sets: [BTreeSet<(i64, VertexId)>; 2] = [BTreeSet::new(), BTreeSet::new()];
        match self.pair_selection {
            PairSelection::Incremental => {
                let max_wdeg = g
                    .vertices()
                    .map(|v| g.weighted_degree(v))
                    .max()
                    .unwrap_or(0)
                    .min(i64::MAX as u64) as i64;
                for side in &mut ws.kl_sides {
                    side.reset(max_wdeg);
                }
                for v in g.vertices() {
                    ws.kl_sides[p.side(v).index()].insert(v, gains[v as usize]);
                }
            }
            PairSelection::SortedPruning => {
                for v in g.vertices() {
                    sets[p.side(v).index()].insert((gains[v as usize], v));
                }
            }
            PairSelection::Exhaustive => {}
        }

        ws.sequence.clear();
        ws.cumulative.clear();
        let mut running = 0i64;
        // Candidate-pair gain evaluations of this pass, reported
        // through the workspace like SA's proposal count so the
        // benchmark records show KL's selection throughput too.
        let mut evals = 0u64;

        for _ in 0..k_max {
            let chosen = match self.pair_selection {
                PairSelection::Incremental => best_pair_buckets(g, &ws.kl_sides, &mut evals),
                PairSelection::SortedPruning => best_pair_sorted(g, &sets, &mut evals),
                PairSelection::Exhaustive => {
                    best_pair_exhaustive(g, p, gains, &ws.locked, &mut evals)
                }
            };
            let Some((gain_ab, a, b)) = chosen else { break };

            // Lock the pair.
            for v in [a, b] {
                ws.locked[v as usize] = true;
                match self.pair_selection {
                    PairSelection::Incremental => {
                        ws.kl_sides[p.side(v).index()].remove(v, gains[v as usize]);
                    }
                    PairSelection::SortedPruning => {
                        sets[p.side(v).index()].remove(&(gains[v as usize], v));
                    }
                    PairSelection::Exhaustive => {}
                }
            }
            running += gain_ab;
            ws.sequence.push((a, b));
            ws.cumulative.push(running);

            // Update gains of unlocked neighbors of a and b, relative to
            // the virtual swap of (a, b).
            for (moved, other) in [(a, b), (b, a)] {
                let moved_side = p.side(moved);
                for (x, w) in g.neighbors_weighted(moved) {
                    if ws.locked[x as usize] || x == other {
                        continue;
                    }
                    let delta = if p.side(x) == moved_side {
                        2 * w as i64
                    } else {
                        -2 * (w as i64)
                    };
                    if delta == 0 {
                        continue;
                    }
                    match self.pair_selection {
                        PairSelection::Incremental => {
                            let side = &mut ws.kl_sides[p.side(x).index()];
                            side.remove(x, gains[x as usize]);
                            gains[x as usize] += delta;
                            side.insert(x, gains[x as usize]);
                        }
                        PairSelection::SortedPruning => {
                            let set = &mut sets[p.side(x).index()];
                            set.remove(&(gains[x as usize], x));
                            gains[x as usize] += delta;
                            set.insert((gains[x as usize], x));
                        }
                        PairSelection::Exhaustive => gains[x as usize] += delta,
                    }
                }
            }
        }

        ws.add_proposals(evals);

        // Best prefix.
        let Some((best_idx, &best_gain)) = ws
            .cumulative
            .iter()
            .enumerate()
            .max_by(|(i, x), (j, y)| x.cmp(y).then(j.cmp(i)))
        else {
            return 0;
        };
        if best_gain <= 0 {
            return 0;
        }
        let cut_before = p.cut();
        for &(a, b) in &ws.sequence[..=best_idx] {
            p.swap(g, a, b);
        }
        debug_assert_eq!(p.cut(), p.recompute_cut(g));
        debug_assert_eq!(cut_before - p.cut(), best_gain as u64);
        cut_before - p.cut()
    }
}

/// Exact best pair via descending `(g_a + g_b)` scan with pruning over
/// the workspace-resident buckets. [`SortedBuckets::iter_desc`] visits
/// candidates in the same descending `(gain, vertex)` order as the
/// `BTreeSet` scan, so this selects bit-identically to
/// [`best_pair_sorted`] (and hence to [`best_pair_exhaustive`]).
fn best_pair_buckets(
    g: &Graph,
    sides: &[SortedBuckets; 2],
    evals: &mut u64,
) -> Option<(i64, VertexId, VertexId)> {
    let (set_a, set_b) = (&sides[0], &sides[1]);
    let (gb_max, _) = set_b.iter_desc().next()?;
    let mut best: Option<(i64, VertexId, VertexId)> = None;
    for (ga, a) in set_a.iter_desc() {
        if let Some((bg, _, _)) = best {
            if ga + gb_max <= bg {
                break;
            }
        }
        for (gb, b) in set_b.iter_desc() {
            if let Some((bg, _, _)) = best {
                if ga + gb <= bg {
                    break;
                }
            }
            *evals += 1;
            let actual = ga + gb - 2 * g.edge_weight(a, b).unwrap_or(0) as i64;
            if best.is_none_or(|(bg, _, _)| actual > bg) {
                best = Some((actual, a, b));
            }
        }
    }
    best
}

/// Exact best pair via descending `(g_a + g_b)` scan with pruning.
fn best_pair_sorted(
    g: &Graph,
    sets: &[BTreeSet<(i64, VertexId)>; 2],
    evals: &mut u64,
) -> Option<(i64, VertexId, VertexId)> {
    let (set_a, set_b) = (&sets[0], &sets[1]);
    let &(gb_max, _) = set_b.iter().next_back()?;
    let mut best: Option<(i64, VertexId, VertexId)> = None;
    for &(ga, a) in set_a.iter().rev() {
        if let Some((bg, _, _)) = best {
            if ga + gb_max <= bg {
                break;
            }
        }
        for &(gb, b) in set_b.iter().rev() {
            if let Some((bg, _, _)) = best {
                if ga + gb <= bg {
                    break;
                }
            }
            *evals += 1;
            let actual = ga + gb - 2 * g.edge_weight(a, b).unwrap_or(0) as i64;
            if best.is_none_or(|(bg, _, _)| actual > bg) {
                best = Some((actual, a, b));
            }
        }
    }
    best
}

/// Literal Figure 2 pair selection: evaluate every unlocked pair. Ties
/// are broken exactly as the sorted scan breaks them (largest
/// `(g_a, a)`, then largest `(g_b, b)`), so the two strategies make
/// identical selections.
fn best_pair_exhaustive(
    g: &Graph,
    p: &Bisection,
    gains: &[i64],
    locked: &[bool],
    evals: &mut u64,
) -> Option<(i64, VertexId, VertexId)> {
    let mut best: Option<(i64, i64, VertexId, i64, VertexId)> = None;
    for a in g
        .vertices()
        .filter(|&v| !locked[v as usize] && p.side(v) == Side::A)
    {
        for b in g
            .vertices()
            .filter(|&v| !locked[v as usize] && p.side(v) == Side::B)
        {
            *evals += 1;
            let (ga, gb) = (gains[a as usize], gains[b as usize]);
            let actual = ga + gb - 2 * g.edge_weight(a, b).unwrap_or(0) as i64;
            let key = (actual, ga, a, gb, b);
            if best.is_none_or(|k| key > k) {
                best = Some(key);
            }
        }
    }
    best.map(|(actual, _, a, _, b)| (actual, a, b))
}

impl KernighanLin {
    /// As [`Refiner::refine`], additionally returning the number of
    /// passes that achieved an improvement — the quantity behind
    /// Observation 1's "it takes fewer passes for the algorithms to
    /// converge on degree 4 graphs".
    pub fn refine_with_passes(&self, g: &Graph, init: Bisection) -> (Bisection, usize) {
        self.refine_with_passes_in(g, init, &mut Workspace::new())
    }

    /// As [`KernighanLin::refine_with_passes`], reusing `ws` for every
    /// pass.
    pub fn refine_with_passes_in(
        &self,
        g: &Graph,
        mut init: Bisection,
        ws: &mut Workspace,
    ) -> (Bisection, usize) {
        let mut productive = 0;
        for _ in 0..self.max_passes {
            if self.pass_in(g, &mut init, ws) == 0 {
                break;
            }
            productive += 1;
        }
        (init, productive)
    }
}

impl Bisector for KernighanLin {
    fn name(&self) -> String {
        "KL".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        let init = seed::random_balanced(g, rng);
        self.refine_with_passes_in(g, init, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let init = seed::random_balanced(g, rng);
        let (p, passes) = self.refine_with_passes_in(g, init, ws);
        (p, passes as u64)
    }
}

impl Refiner for KernighanLin {
    fn refine(&self, g: &Graph, init: Bisection, _rng: &mut dyn RngCore) -> Bisection {
        self.refine_with_passes(g, init).0
    }

    fn refine_counted(
        &self,
        g: &Graph,
        init: Bisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let (p, passes) = self.refine_with_passes_in(g, init, ws);
        (p, passes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(g: &Graph, seed: u64) -> Bisection {
        let mut rng = StdRng::seed_from_u64(seed);
        KernighanLin::new().bisect(g, &mut rng)
    }

    #[test]
    fn pass_never_increases_cut() {
        let g = special::grid(6, 6);
        let kl = KernighanLin::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = seed::random_balanced(&g, &mut rng);
            let before = p.cut();
            let improvement = kl.pass(&g, &mut p);
            assert_eq!(before - p.cut(), improvement);
            assert!(p.cut() <= before);
            assert_eq!(p.cut(), p.recompute_cut(&g));
        }
    }

    #[test]
    fn preserves_side_counts() {
        let g = special::grid(5, 4);
        let p = run(&g, 3);
        assert_eq!(p.count(Side::A), 10);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn solves_even_cycle_optimally() {
        // Bisection width of C_20 is 2; KL from random starts finds it
        // at least from some seeds — require best-of-5 to be exact.
        let g = special::cycle(20);
        let mut rng = StdRng::seed_from_u64(0);
        let best = crate::bisector::best_of(&KernighanLin::new(), &g, 5, &mut rng);
        assert_eq!(best.cut(), 2);
    }

    #[test]
    fn near_optimal_on_grid() {
        // 8×8 grid has bisection width 8.
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(11);
        let best = crate::bisector::best_of(&KernighanLin::new(), &g, 5, &mut rng);
        assert!(best.cut() <= 12, "cut {}", best.cut());
    }

    #[test]
    fn fixpoint_pass_returns_zero() {
        let g = special::grid(4, 4);
        let kl = KernighanLin::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = kl.bisect(&g, &mut rng);
        assert_eq!(kl.pass(&g, &mut p), 0);
    }

    #[test]
    fn all_pair_selections_match() {
        let incremental = KernighanLin::new();
        assert_eq!(incremental.pair_selection, PairSelection::Incremental);
        let sorted = KernighanLin::new().with_pair_selection(PairSelection::SortedPruning);
        let exhaustive = KernighanLin::new().with_pair_selection(PairSelection::Exhaustive);
        // One shared workspace across every pass exercises arena reuse
        // across graphs of different sizes.
        let mut ws = Workspace::new();
        for (rows, cols) in [(4, 5), (6, 3), (2, 8)] {
            let g = special::grid(rows, cols);
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = seed::random_balanced(&g, &mut rng);
                let mut a = init.clone();
                let mut b = init.clone();
                let mut c = init;
                let ga = sorted.pass(&g, &mut a);
                let gb = exhaustive.pass(&g, &mut b);
                let gc = incremental.pass_in(&g, &mut c, &mut ws);
                assert_eq!(ga, gb, "grid {rows}x{cols} seed {seed}");
                assert_eq!(ga, gc, "grid {rows}x{cols} seed {seed}");
                assert_eq!(a.cut(), b.cut());
                // The incremental strategy must make the *same
                // selections*, not just reach an equal cut.
                assert_eq!(a, c, "grid {rows}x{cols} seed {seed}");
            }
        }
    }

    #[test]
    fn full_refinement_identical_across_strategies() {
        let g = special::ladder(32);
        let mut results = Vec::new();
        for strategy in [
            PairSelection::Incremental,
            PairSelection::SortedPruning,
            PairSelection::Exhaustive,
        ] {
            let mut rng = StdRng::seed_from_u64(42);
            let kl = KernighanLin::new().with_pair_selection(strategy);
            results.push(kl.bisect(&g, &mut rng));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn handles_weighted_coarse_graph() {
        use bisect_graph::{contraction, matching};
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let m = matching::random_maximal(&g, &mut rng);
        let c = contraction::contract_matching(&g, &m);
        let coarse = c.coarse();
        let init = seed::weight_balanced_random(coarse, &mut rng);
        let counts = (init.count(Side::A), init.count(Side::B));
        let refined = KernighanLin::new().refine(coarse, init, &mut rng);
        assert_eq!((refined.count(Side::A), refined.count(Side::B)), counts);
        assert_eq!(refined.cut(), refined.recompute_cut(coarse));
    }

    #[test]
    fn tiny_graphs_do_not_crash() {
        for n in 0..5 {
            let g = special::path(n.max(1));
            let mut rng = StdRng::seed_from_u64(1);
            let p = KernighanLin::new().bisect(&g, &mut rng);
            assert_eq!(p.cut(), p.recompute_cut(&g));
        }
        let g = bisect_graph::Graph::empty(0);
        let mut rng = StdRng::seed_from_u64(1);
        let p = KernighanLin::new().bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn refine_is_monotone() {
        let g = special::binary_tree(31);
        let mut rng = StdRng::seed_from_u64(9);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let refined = KernighanLin::new().refine(&g, init, &mut rng);
        assert!(refined.cut() <= before);
    }

    #[test]
    fn max_passes_limits_work() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(13);
        let init = seed::random_balanced(&g, &mut rng);
        let one_pass = KernighanLin::new().with_max_passes(1);
        let refined = one_pass.refine(&g, init.clone(), &mut rng);
        let kl_full = KernighanLin::new();
        let full = kl_full.refine(&g, init, &mut rng);
        assert!(full.cut() <= refined.cut());
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = KernighanLin::new().with_max_passes(0);
    }

    #[test]
    fn known_failure_mode_on_ladder_sometimes() {
        // The paper notes KL "is known to fail badly" on ladders: from
        // random starts it often lands above the optimal cut of 2. We
        // only check it runs and is balanced; quality is benchmarked.
        let g = special::ladder(32);
        let p = run(&g, 21);
        assert!(p.is_balanced(&g));
        assert!(p.cut() >= 2);
    }

    #[test]
    fn refine_with_passes_counts_productive_passes() {
        let g = special::ladder(64);
        let mut rng = StdRng::seed_from_u64(17);
        let init = seed::random_balanced(&g, &mut rng);
        let kl = KernighanLin::new();
        let (refined, passes) = kl.refine_with_passes(&g, init.clone());
        assert!(passes >= 1, "a random start on a ladder always improves");
        assert!(refined.cut() < init.cut());
        // A fixpoint input takes zero productive passes.
        let (_, passes2) = kl.refine_with_passes(&g, refined);
        assert_eq!(passes2, 0);
    }

    #[test]
    // Observation 1 claims KL converges in fewer passes on degree-4
    // Gbreg graphs. Measured here the direction is inconsistent at
    // every feasible test size (d4 needs *more* passes at n=300 and
    // the sign flips with (n, b) at n=600..1000), so the claim is not
    // reproduced by this implementation. Tracked in ISSUE 1 (parallel
    // engine PR) — revisit at paper scale (n=5000) once the parallel
    // runner makes that ensemble cheap.
    #[ignore = "paper Observation 1 pass-count claim not reproduced; see ISSUE 1"]
    fn degree4_needs_fewer_passes_than_degree3() {
        // Observation 1's speed mechanism, averaged over seeds.
        let mut total = [0usize; 2];
        for (i, d) in [3usize, 4].into_iter().enumerate() {
            let params = bisect_gen::gbreg::GbregParams::new(300, 6, d).unwrap();
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
                let init = seed::random_balanced(&g, &mut rng);
                let (_, passes) = KernighanLin::new().refine_with_passes(&g, init);
                total[i] += passes;
            }
        }
        assert!(
            total[1] <= total[0],
            "degree 4 should need no more passes: d3 {} vs d4 {}",
            total[0],
            total[1]
        );
    }

    #[test]
    fn pass_reports_pair_evaluations_through_the_workspace() {
        let g = bisect_gen::special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let init = seed::random_balanced(&g, &mut rng);
        let mut counts = Vec::new();
        for strategy in [
            PairSelection::Incremental,
            PairSelection::SortedPruning,
            PairSelection::Exhaustive,
        ] {
            let kl = KernighanLin::new().with_pair_selection(strategy);
            let mut ws = Workspace::new();
            let mut p = init.clone();
            kl.pass_in(&g, &mut p, &mut ws);
            let evals = ws.take_proposals();
            assert!(evals > 0, "{strategy:?} evaluated no pairs");
            counts.push(evals);
        }
        // The bucket and BTreeSet scans prune identically, and neither
        // can evaluate more pairs than the exhaustive reference.
        assert_eq!(counts[0], counts[1]);
        assert!(counts[0] <= counts[2]);
        // A second pass from the refined state accumulates on top of
        // the drained counter.
        let kl = KernighanLin::new();
        let mut ws = Workspace::new();
        let mut p = init.clone();
        kl.pass_in(&g, &mut p, &mut ws);
        kl.pass_in(&g, &mut p, &mut ws);
        assert!(ws.take_proposals() >= counts[0]);
    }

    #[test]
    fn gbreg_degree4_recovers_planted_bisection() {
        // Observation 1's good case: degree-4 Gbreg instances are easy.
        let params = bisect_gen::gbreg::GbregParams::new(200, 4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1989);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let best = crate::bisector::best_of(&KernighanLin::new(), &g, 4, &mut rng);
        assert_eq!(best.cut(), 4, "expected the planted bisection width");
    }
}
