//! Graph bisection heuristics reproducing Bui, Heigham, Jones &
//! Leighton, *Improving the Performance of the Kernighan-Lin and
//! Simulated Annealing Graph Bisection Algorithms* (DAC 1989).
//!
//! The paper's algorithms:
//!
//! * [`kl::KernighanLin`] — the classical pass-based pair-swap
//!   heuristic (§III, Figure 2).
//! * [`sa::SimulatedAnnealing`] — Figure 1's generic annealing with a
//!   Johnson-et-al.-style schedule and both swap and single-flip move
//!   sets (§II).
//! * [`pipeline::Pipeline`] — the paper's contribution as a composable
//!   coarsen → partition → refine cycle: contract a random maximal
//!   matching, bisect the denser coarse graph, project back, and refine
//!   (§V). [`pipeline::Pipeline::ckl`] is **CKL**,
//!   [`pipeline::Pipeline::csa`] is **CSA**, and the same engine covers
//!   multilevel (V-cycle) bisection and recursive `2^k`-way
//!   partitioning.
//!
//! Extensions and baselines used by tests and the benchmark harness:
//!
//! * [`fm::FiducciaMattheyses`] — the 1982 bucket-gain successor of KL
//!   (single moves, linear-time passes), for ablations.
//! * [`fm::BoundaryFm`] — FM whose passes seed only from the cut
//!   boundary, tracked incrementally by [`gain_cache::GainCache`] and
//!   projected across uncoarsening levels so no level pays a full
//!   `O(V + E)` gain rebuild; `O(boundary · deg)` per pass on
//!   well-cut graphs.
//! * [`pipeline::CoarsenScheme`] / [`pipeline::InitialPartitioner`] —
//!   swappable coarsening (random, heavy-edge, edge-order matchings)
//!   and initial-partition (random, greedy, spectral, exact) stages.
//! * [`exact`] — branch-and-bound optimum for small graphs (ground
//!   truth in tests).
//! * [`degree2`] — the paper's `O(n²)` exact solver for maximum-degree-2
//!   graphs (unions of paths and chordless cycles).
//! * [`netlist`] — hypergraph-native FM on netlists
//!   (`bisect_graph::hypergraph`), the true objective of the paper's
//!   VLSI motivation.
//! * [`par_fm::ParallelFm`] — boundary-partitioned parallel FM
//!   refinement (with [`pipeline::ParallelMatching`] coarsening) for
//!   million-vertex instances; deterministic at a fixed thread count.
//! * [`spectral::SpectralBisector`] — Fiedler-vector bisection.
//! * [`greedy::GreedyGrowth`] — BFS region growing.
//! * [`bisector::RandomBisector`] — the trivial baseline.
//!
//! Everything operates on [`partition::Bisection`] via the
//! [`bisector::Bisector`]/[`bisector::Refiner`] traits, and draws
//! randomness from any [`rand::RngCore`] — the workspace's
//! lagged-Fibonacci generator (`bisect_gen::rng::LaggedFibonacci`)
//! reproduces the paper's choice.
//!
//! # Quickstart
//!
//! ```
//! use bisect_core::bisector::{best_of, Bisector};
//! use bisect_core::pipeline::Pipeline;
//! use bisect_gen::special;
//! use rand::SeedableRng;
//!
//! let g = special::grid(10, 10);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1989);
//! let ckl = Pipeline::ckl();
//! let p = best_of(&ckl, &g, 2, &mut rng); // the paper's best-of-two protocol
//! assert!(p.is_balanced(&g));
//! assert!(p.cut() <= 14); // bisection width of the 10×10 grid is 10
//! ```
//!
//! Fallible configurations surface a typed [`error::BisectError`]
//! through [`pipeline::Pipeline::try_bisect`] instead of panicking.
//!
//! The pre-pipeline wrappers (`Compacted`, `Multilevel`,
//! `RecursiveBisection`) have been removed; their behavior lives on
//! bit-identically in the [`pipeline`] descriptors, pinned by the
//! golden values in `tests/pipeline_equivalence.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisector;
pub mod degree2;
pub mod error;
pub mod exact;
pub mod fm;
pub(crate) mod gain;
pub mod gain_cache;
pub mod greedy;
pub mod kl;
pub mod metrics;
pub mod netlist;
pub mod par_fm;
pub mod partition;
pub mod pipeline;
pub mod sa;
pub mod seed;
pub mod spectral;
pub mod workspace;
