//! Graph bisection heuristics reproducing Bui, Heigham, Jones &
//! Leighton, *Improving the Performance of the Kernighan-Lin and
//! Simulated Annealing Graph Bisection Algorithms* (DAC 1989).
//!
//! The paper's algorithms:
//!
//! * [`kl::KernighanLin`] — the classical pass-based pair-swap
//!   heuristic (§III, Figure 2).
//! * [`sa::SimulatedAnnealing`] — Figure 1's generic annealing with a
//!   Johnson-et-al.-style schedule and both swap and single-flip move
//!   sets (§II).
//! * [`compaction::Compacted`] — the paper's contribution: contract a
//!   random maximal matching, bisect the denser coarse graph, project
//!   back, and refine (§V). `Compacted<KernighanLin>` is **CKL**,
//!   `Compacted<SimulatedAnnealing>` is **CSA**.
//!
//! Extensions and baselines used by tests and the benchmark harness:
//!
//! * [`fm::FiducciaMattheyses`] — the 1982 bucket-gain successor of KL
//!   (single moves, linear-time passes), for ablations.
//! * [`multilevel::Multilevel`] — recursive compaction (what the
//!   heuristic became in METIS-style partitioners).
//! * [`recursive::RecursiveBisection`] — recursive `2^k`-way
//!   partitioning, the min-cut placement loop the paper's introduction
//!   motivates.
//! * [`exact`] — branch-and-bound optimum for small graphs (ground
//!   truth in tests).
//! * [`degree2`] — the paper's `O(n²)` exact solver for maximum-degree-2
//!   graphs (unions of paths and chordless cycles).
//! * [`netlist`] — hypergraph-native FM on netlists
//!   (`bisect_graph::hypergraph`), the true objective of the paper's
//!   VLSI motivation.
//! * [`spectral::SpectralBisector`] — Fiedler-vector bisection.
//! * [`greedy::GreedyGrowth`] — BFS region growing.
//! * [`bisector::RandomBisector`] — the trivial baseline.
//!
//! Everything operates on [`partition::Bisection`] via the
//! [`bisector::Bisector`]/[`bisector::Refiner`] traits, and draws
//! randomness from any [`rand::RngCore`] — the workspace's
//! lagged-Fibonacci generator (`bisect_gen::rng::LaggedFibonacci`)
//! reproduces the paper's choice.
//!
//! # Quickstart
//!
//! ```
//! use bisect_core::bisector::{best_of, Bisector};
//! use bisect_core::compaction::Compacted;
//! use bisect_core::kl::KernighanLin;
//! use bisect_gen::special;
//! use rand::SeedableRng;
//!
//! let g = special::grid(10, 10);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1989);
//! let ckl = Compacted::new(KernighanLin::new());
//! let p = best_of(&ckl, &g, 2, &mut rng); // the paper's best-of-two protocol
//! assert!(p.is_balanced(&g));
//! assert!(p.cut() <= 14); // bisection width of the 10×10 grid is 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisector;
pub mod compaction;
pub mod degree2;
pub mod exact;
pub mod fm;
pub(crate) mod gain;
pub mod greedy;
pub mod kl;
pub mod metrics;
pub mod multilevel;
pub mod netlist;
pub mod partition;
pub mod recursive;
pub mod sa;
pub mod seed;
pub mod spectral;
pub mod workspace;
