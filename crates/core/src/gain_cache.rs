//! Incrementally maintained per-vertex gains shared by the SA, KL and
//! FM hot paths, plus the incremental **boundary set** behind the
//! boundary-localized refiners.
//!
//! The annealing inner loop (`sa.rs`) evaluates `sizefactor·|V|`
//! proposals per temperature, and at useful temperatures most of them
//! are *rejected*. Recomputing [`Bisection::gain`] per proposal makes
//! the common rejected case cost two `O(deg)` adjacency walks; the
//! cache turns it into two array reads plus one edge lookup, and pays
//! the `O(deg)` walk only on *accepted* moves — the classic
//! Fiduccia-Mattheyses maintained-gain discipline applied to annealing.
//! KL and FM initialize their per-pass gain state from the same cache
//! instead of rebuilding equivalent arrays locally.
//!
//! Alongside each gain the cache tracks the vertex's **external
//! degree** (total weight of its cut edges) and maintains the set
//! `{v : ext(v) > 0}` — the cut boundary — as moves land: a vertex
//! enters or leaves the boundary in `O(deg)` exactly when its external
//! degree crosses zero. [`crate::fm::BoundaryFm`] and the
//! boundary-seeded [`crate::par_fm::ParallelFm`] mode seed their passes
//! from this set instead of scanning every vertex, and
//! [`GainCache::project`] maps the whole cache (gains, external
//! degrees, boundary) through an uncoarsening step so multilevel
//! pipelines never rebuild it `O(V + E)` per level.

use bisect_graph::{Graph, VertexId};

use crate::partition::{Bisection, Side};

/// Per-vertex gain cache with per-side member index arrays and an
/// incrementally maintained boundary set.
///
/// Invariants, established by [`GainCache::init`] (or
/// [`GainCache::project`]) and maintained by [`GainCache::record_move`]
/// (void after [`GainCache::gains_mut`] hands the arena to a caller,
/// until the next `init`):
///
/// * `gain(v) == p.gain(g, v)` for every vertex — gains are *exact*
///   integers, never approximations, so cached and recomputed proposal
///   evaluation produce bit-identical accept decisions.
/// * `ext(v)` = total weight of `v`'s cut edges, so
///   `gain(v) == ext(v) − (weighted_degree(v) − ext(v))`.
/// * `boundary()` holds exactly the vertices with `ext(v) > 0`, each
///   once (order unspecified but a pure function of the move history).
///   The `ext`/`boundary` pair (only) is additionally voided by
///   [`GainCache::record_move_untracked`], the cheaper flavor for
///   consumers that never read the boundary.
/// * `members(s)` holds exactly side `s`'s vertices: ascending after
///   `init`, order unspecified (swap-remove) after moves.
///
/// All storage is retained across runs (`init` only grows buffers), so
/// a workspace-resident cache allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct GainCache {
    /// `gains[v]` = weight of v's cross edges − weight of v's internal
    /// edges, for the bisection the cache was initialized against.
    gains: Vec<i64>,
    /// `ext[v]` = weight of v's cross edges (external degree).
    ext: Vec<u64>,
    /// Vertex lists per side, indexed by [`Side::index`].
    members: [Vec<VertexId>; 2],
    /// `pos[v]` = index of `v` within its side's member list.
    pos: Vec<u32>,
    /// The boundary vertices, each exactly once.
    boundary: Vec<VertexId>,
    /// `bpos[v]` = index of `v` within `boundary`; `u32::MAX` = not a
    /// boundary vertex.
    bpos: Vec<u32>,
    /// Scratch for [`GainCache::project`]: the coarse boundary flags,
    /// snapshotted before the arrays are rebuilt at the fine size.
    coarse_boundary: Vec<bool>,
}

impl GainCache {
    /// (Re)builds the cache for bisection `p` of `g` in `O(V + E)`,
    /// reusing all previously allocated storage.
    pub fn init(&mut self, g: &Graph, p: &Bisection) {
        let n = g.num_vertices();
        self.gains.clear();
        self.ext.clear();
        self.pos.clear();
        self.pos.resize(n, 0);
        self.bpos.clear();
        self.bpos.resize(n, u32::MAX);
        self.boundary.clear();
        for side in &mut self.members {
            side.clear();
        }
        let sides = p.sides();
        for v in g.vertices() {
            let sv = sides[v as usize];
            let mut internal = 0i64;
            let mut external = 0u64;
            for (u, w) in g.neighbors_weighted(v) {
                if sides[u as usize] == sv {
                    internal += w as i64;
                } else {
                    external += w;
                }
            }
            self.gains.push(external as i64 - internal);
            self.ext.push(external);
            if external > 0 {
                self.bpos[v as usize] = self.boundary.len() as u32;
                self.boundary.push(v);
            }
            let side = &mut self.members[p.side(v).index()];
            self.pos[v as usize] = side.len() as u32;
            side.push(v);
        }
    }

    /// Remaps the cache through one uncoarsening step, replacing the
    /// `O(V + E)` rebuild with `O(V + deg(boundary region))`: interior
    /// fine vertices are filled in `O(deg)` *sequential* reads (no
    /// neighbor-side lookups), and only fine vertices whose coarse
    /// image is on the coarse boundary pay the full adjacency walk.
    ///
    /// Correctness rests on boundary coverage: sides inherit through
    /// contraction, so a cut fine edge maps to a cut (or contracted,
    /// hence impossible) coarse edge — a fine vertex can only be on the
    /// fine boundary if its coarse image is on the coarse boundary.
    /// Interior images therefore have every fine neighbor on their own
    /// side: `gain = −weighted_degree`, `ext = 0`, exactly.
    ///
    /// On entry the cache must be exact for the *coarse* partition that
    /// `p` was projected from; `fine_to_coarse[v]` is that
    /// contraction's vertex map
    /// ([`bisect_graph::contraction::Contraction::fine_to_coarse`]) and
    /// `p` must equal the side-projection of the coarse partition onto
    /// `g`. On exit the cache is exact for `(g, p)`.
    pub fn project(&mut self, g: &Graph, p: &Bisection, fine_to_coarse: &[VertexId]) {
        let n = g.num_vertices();
        debug_assert_eq!(n, fine_to_coarse.len(), "vertex map does not match graph");
        // Snapshot the coarse boundary before the arrays below are
        // rebuilt at the fine size.
        let n_coarse = self.gains.len();
        self.coarse_boundary.clear();
        self.coarse_boundary.resize(n_coarse, false);
        for &c in &self.boundary {
            self.coarse_boundary[c as usize] = true;
        }

        self.gains.clear();
        self.ext.clear();
        self.pos.clear();
        self.pos.resize(n, 0);
        self.bpos.clear();
        self.bpos.resize(n, u32::MAX);
        self.boundary.clear();
        for side in &mut self.members {
            side.clear();
        }
        let sides = p.sides();
        for v in g.vertices() {
            let vi = v as usize;
            let (gain, external) = if self.coarse_boundary[fine_to_coarse[vi] as usize] {
                let sv = sides[vi];
                let mut internal = 0i64;
                let mut external = 0u64;
                for (u, w) in g.neighbors_weighted(v) {
                    if sides[u as usize] == sv {
                        internal += w as i64;
                    } else {
                        external += w;
                    }
                }
                (external as i64 - internal, external)
            } else {
                (-(g.weighted_degree(v) as i64), 0)
            };
            self.gains.push(gain);
            self.ext.push(external);
            if external > 0 {
                self.bpos[vi] = self.boundary.len() as u32;
                self.boundary.push(v);
            }
            let side = &mut self.members[p.side(v).index()];
            self.pos[vi] = side.len() as u32;
            side.push(v);
        }
        #[cfg(debug_assertions)]
        for v in g.vertices() {
            debug_assert_eq!(
                self.gains[v as usize],
                p.gain(g, v),
                "projected gain of {v} is stale — was `p` side-projected from \
                 the partition this cache described?"
            );
        }
    }

    /// The cached gain of moving `v` to the other side.
    #[inline]
    pub fn gain(&self, v: VertexId) -> i64 {
        self.gains[v as usize]
    }

    /// The cached external degree of `v`: the total weight of its cut
    /// edges. Zero exactly when `v` is interior to its side.
    #[inline]
    pub fn ext(&self, v: VertexId) -> u64 {
        self.ext[v as usize]
    }

    /// The current boundary vertices (`ext > 0`), each exactly once.
    /// The order is unspecified but deterministic: a pure function of
    /// the init state and the recorded move history.
    #[inline]
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Whether `v` is currently a boundary vertex.
    #[inline]
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.bpos[v as usize] != u32::MAX
    }

    /// The position of `v` within [`GainCache::boundary`], if `v` is a
    /// boundary vertex — an O(1) membership-and-index lookup for
    /// consumers that partition the boundary list (the boundary-seeded
    /// parallel refiner chunks it by position).
    #[inline]
    pub fn boundary_index(&self, v: VertexId) -> Option<usize> {
        let p = self.bpos[v as usize];
        (p != u32::MAX).then_some(p as usize)
    }

    /// The cached pair gain `g_ab = g_a + g_b − 2δ(a, b)` for swapping
    /// `a` and `b`, which must be on opposite sides — one edge lookup
    /// instead of the two adjacency walks of [`Bisection::swap_gain`],
    /// producing the same integer.
    #[inline]
    pub fn swap_gain(&self, g: &Graph, a: VertexId, b: VertexId) -> i64 {
        let delta = g.edge_weight(a, b).unwrap_or(0) as i64;
        self.gains[a as usize] + self.gains[b as usize] - 2 * delta
    }

    /// All cached gains, indexed by vertex.
    #[inline]
    pub fn gains(&self) -> &[i64] {
        &self.gains
    }

    /// Mutable access to the gain arena, for passes (KL) that evolve
    /// *virtual* gains as vertices lock. This transfers the arena to
    /// the caller: cache invariants (gains, external degrees, boundary)
    /// are void until the next [`GainCache::init`].
    #[inline]
    pub fn gains_mut(&mut self) -> &mut [i64] {
        &mut self.gains
    }

    /// The vertices currently on side `s` (ascending after
    /// [`GainCache::init`], arbitrary order after moves).
    #[inline]
    pub fn members(&self, s: Side) -> &[VertexId] {
        &self.members[s.index()]
    }

    fn boundary_insert(&mut self, v: VertexId) {
        debug_assert_eq!(self.bpos[v as usize], u32::MAX);
        self.bpos[v as usize] = self.boundary.len() as u32;
        self.boundary.push(v);
    }

    fn boundary_remove(&mut self, v: VertexId) {
        let at = self.bpos[v as usize] as usize;
        debug_assert_ne!(at as u32, u32::MAX);
        let removed = self.boundary.swap_remove(at);
        debug_assert_eq!(removed, v, "boundary list out of sync");
        if let Some(&swapped_in) = self.boundary.get(at) {
            self.bpos[swapped_in as usize] = at as u32;
        }
        self.bpos[v as usize] = u32::MAX;
    }

    /// Updates the cache for `v` moving to the other side, in
    /// `O(degree(v))`. Must be called while `p` still shows `v` on its
    /// *old* side (i.e. before `Bisection::move_vertex*`); `g` and `p`
    /// must be the pair the cache was initialized against.
    pub fn record_move(&mut self, g: &Graph, p: &Bisection, v: VertexId) {
        self.record_move_impl::<true>(g, p, v);
    }

    /// As [`GainCache::record_move`], but skips the external-degree and
    /// boundary-set bookkeeping: gains and member lists stay exact,
    /// `ext`/`boundary` are **void** until the next
    /// [`init`](GainCache::init) or [`project`](GainCache::project).
    ///
    /// For consumers that never read the boundary — the SA proposal
    /// loop records thousands of accepted moves per run and pays for
    /// the skipped per-neighbor work measurably.
    pub fn record_move_untracked(&mut self, g: &Graph, p: &Bisection, v: VertexId) {
        self.record_move_impl::<false>(g, p, v);
    }

    /// Monomorphized body of the two `record_move` flavors: `TRACK`
    /// compiles the boundary bookkeeping in or out.
    fn record_move_impl<const TRACK: bool>(&mut self, g: &Graph, p: &Bisection, v: VertexId) {
        let old = p.side(v);
        let vi = v as usize;
        // v's external and internal edge sets trade places, so its new
        // external degree is its old internal one: ext − gain.
        let new_ext_v = if TRACK {
            (self.ext[vi] as i64 - self.gains[vi]) as u64
        } else {
            0
        };
        self.gains[vi] = -self.gains[vi];
        // Old-side neighbors lose an internal edge and get a cross
        // edge (gain += 2w, ext += w); new-side neighbors the reverse.
        // A neighbor enters or leaves the boundary exactly when its
        // external degree crosses zero. Graphs are self-loop free
        // (GraphError::SelfLoop), so u != v.
        for (u, w) in g.neighbors_weighted(v) {
            let ui = u as usize;
            let wi = w as i64;
            if p.side(u) == old {
                self.gains[ui] += 2 * wi;
                if TRACK {
                    if self.ext[ui] == 0 {
                        self.boundary_insert(u);
                    }
                    self.ext[ui] += w;
                }
            } else {
                self.gains[ui] -= 2 * wi;
                if TRACK {
                    self.ext[ui] -= w;
                    if self.ext[ui] == 0 {
                        self.boundary_remove(u);
                    }
                }
            }
        }
        if TRACK {
            if new_ext_v > 0 {
                if self.bpos[vi] == u32::MAX {
                    self.boundary_insert(v);
                }
            } else if self.bpos[vi] != u32::MAX {
                self.boundary_remove(v);
            }
            self.ext[vi] = new_ext_v;
        }
        let oi = old.index();
        let ni = old.other().index();
        let at = self.pos[vi] as usize;
        let removed = self.members[oi].swap_remove(at);
        debug_assert_eq!(removed, v, "member list out of sync");
        if let Some(&swapped_in) = self.members[oi].get(at) {
            self.pos[swapped_in as usize] = at as u32;
        }
        self.pos[vi] = self.members[ni].len() as u32;
        self.members[ni].push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::random_balanced;
    use bisect_gen::gnp::{self, GnpParams};
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_gnp(n: usize, p: f64, seed: u64) -> Graph {
        let params = GnpParams::new(n, p).unwrap();
        gnp::sample(&mut StdRng::seed_from_u64(seed), &params)
    }

    /// Brute-force external degree: the weight of v's cut edges.
    fn brute_ext(g: &Graph, p: &Bisection, v: VertexId) -> u64 {
        g.neighbors_weighted(v)
            .filter(|&(u, _)| p.side(u) != p.side(v))
            .map(|(_, w)| w)
            .sum()
    }

    fn assert_cache_consistent(cache: &GainCache, g: &Graph, p: &Bisection) {
        let mut boundary = Vec::new();
        for v in g.vertices() {
            assert_eq!(cache.gain(v), p.gain(g, v), "gain of {v}");
            let ext = brute_ext(g, p, v);
            assert_eq!(cache.ext(v), ext, "external degree of {v}");
            assert_eq!(cache.is_boundary(v), ext > 0, "boundary flag of {v}");
            if ext > 0 {
                boundary.push(v);
            }
        }
        let mut cached: Vec<_> = cache.boundary().to_vec();
        cached.sort_unstable();
        assert_eq!(cached, boundary, "boundary set");
        for side in [Side::A, Side::B] {
            let members = cache.members(side);
            assert_eq!(members.len(), p.count(side), "member count of {side:?}");
            assert!(members.iter().all(|&v| p.side(v) == side));
        }
    }

    #[test]
    fn init_matches_bisection_gains() {
        let g = special::grid(7, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        assert_cache_consistent(&cache, &g, &p);
        // Member lists are ascending right after init.
        for side in [Side::A, Side::B] {
            assert!(cache.members(side).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn record_move_tracks_random_flip_sequences() {
        let g = random_gnp(60, 0.12, 5);
        let mut rng = StdRng::seed_from_u64(17);
        let mut p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        for _ in 0..200 {
            let v = rng.gen_range(0..g.num_vertices()) as VertexId;
            cache.record_move(&g, &p, v);
            p.move_vertex(&g, v);
        }
        assert_cache_consistent(&cache, &g, &p);
    }

    #[test]
    fn boundary_membership_is_exact_after_every_accepted_move() {
        // The cross-check the boundary refiners rest on: after *each*
        // recorded move the boundary set equals the brute-force
        // external-degree scan, not just at the end of a sequence.
        for (n, p_edge, seed) in [(40, 0.08, 2u64), (40, 0.2, 3), (61, 0.1, 4)] {
            let g = random_gnp(n, p_edge, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB0);
            let mut p = random_balanced(&g, &mut rng);
            let mut cache = GainCache::default();
            cache.init(&g, &p);
            for _ in 0..80 {
                let v = rng.gen_range(0..g.num_vertices()) as VertexId;
                cache.record_move(&g, &p, v);
                p.move_vertex(&g, v);
                assert_cache_consistent(&cache, &g, &p);
            }
        }
    }

    #[test]
    fn record_move_tracks_swaps_and_cached_swap_gain_matches() {
        let g = random_gnp(48, 0.2, 9);
        let mut rng = StdRng::seed_from_u64(23);
        let mut p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        for _ in 0..120 {
            let a = cache.members(Side::A)[rng.gen_range(0..p.count(Side::A))];
            let b = cache.members(Side::B)[rng.gen_range(0..p.count(Side::B))];
            assert_eq!(cache.swap_gain(&g, a, b), p.swap_gain(&g, a, b));
            // A swap is two single moves; refresh b's gain after a
            // moves so the a–b edge adjustment is included.
            cache.record_move(&g, &p, a);
            p.move_vertex(&g, a);
            cache.record_move(&g, &p, b);
            p.move_vertex(&g, b);
        }
        assert_cache_consistent(&cache, &g, &p);
    }

    #[test]
    fn reinit_shrinks_and_grows_with_graph() {
        let mut cache = GainCache::default();
        let big = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let p_big = random_balanced(&big, &mut rng);
        cache.init(&big, &p_big);
        let small = special::path(8);
        let p_small = random_balanced(&small, &mut rng);
        cache.init(&small, &p_small);
        assert_cache_consistent(&cache, &small, &p_small);
        assert_eq!(cache.gains().len(), 8);
    }

    #[test]
    fn project_matches_fresh_init() {
        use bisect_graph::{contraction, matching};
        for seed in 0..8u64 {
            let g = random_gnp(80, 0.06, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
            let m = matching::random_maximal(&g, &mut rng);
            let c = contraction::contract_matching(&g, &m);
            let coarse = c.coarse();
            let coarse_p = crate::seed::weight_balanced_random(coarse, &mut rng);

            let mut cache = GainCache::default();
            cache.init(coarse, &coarse_p);
            // Mutate a little so the boundary has move history, then
            // project the coarse state down to the fine graph.
            let mut coarse_p = coarse_p;
            for _ in 0..10 {
                let v = rng.gen_range(0..coarse.num_vertices()) as VertexId;
                cache.record_move(coarse, &coarse_p, v);
                coarse_p.move_vertex(coarse, v);
            }
            let fine_sides = c.project_sides(coarse_p.sides());
            let mut fine_p = Bisection::from_sides(&g, fine_sides).unwrap();
            cache.project(&g, &fine_p, c.fine_to_coarse());
            assert_cache_consistent(&cache, &g, &fine_p);

            // And the projected cache keeps tracking moves.
            for _ in 0..20 {
                let v = rng.gen_range(0..g.num_vertices()) as VertexId;
                cache.record_move(&g, &fine_p, v);
                fine_p.move_vertex(&g, v);
            }
            assert_cache_consistent(&cache, &g, &fine_p);
        }
    }

    #[test]
    fn untracked_moves_keep_gains_and_members_exact() {
        let g = random_gnp(40, 0.1, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        for _ in 0..30 {
            let v = rng.gen_range(0..g.num_vertices()) as VertexId;
            cache.record_move_untracked(&g, &p, v);
            p.move_vertex(&g, v);
        }
        // ext/boundary are void, but gains and member lists stay exact.
        for v in g.vertices() {
            assert_eq!(cache.gain(v), p.gain(&g, v), "gain of {v}");
        }
        for side in [Side::A, Side::B] {
            assert_eq!(cache.members(side).len(), p.count(side));
            assert!(cache.members(side).iter().all(|&v| p.side(v) == side));
        }
        // A fresh init restores the full invariant set.
        cache.init(&g, &p);
        assert_cache_consistent(&cache, &g, &p);
    }

    #[test]
    fn boundary_empty_when_cut_is_zero() {
        let g = special::path(8);
        // Split the path at its middle edge: cut 1, boundary {3, 4} —
        // then a zero-cut partition of two disjoint paths.
        let mut b = bisect_graph::GraphBuilder::new(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
            b.add_edge(u, v).unwrap();
        }
        let disjoint = b.build();
        let sides: Vec<bool> = (0..8).map(|v| v >= 4).collect();
        let p = Bisection::from_sides(&disjoint, sides).unwrap();
        let mut cache = GainCache::default();
        cache.init(&disjoint, &p);
        assert_eq!(p.cut(), 0);
        assert!(cache.boundary().is_empty());

        let sides: Vec<bool> = (0..8).map(|v| v >= 4).collect();
        let p = Bisection::from_sides(&g, sides).unwrap();
        cache.init(&g, &p);
        assert_eq!(p.cut(), 1);
        let mut boundary = cache.boundary().to_vec();
        boundary.sort_unstable();
        assert_eq!(boundary, vec![3, 4]);
    }
}
