//! Incrementally maintained per-vertex gains shared by the SA, KL and
//! FM hot paths.
//!
//! The annealing inner loop (`sa.rs`) evaluates `sizefactor·|V|`
//! proposals per temperature, and at useful temperatures most of them
//! are *rejected*. Recomputing [`Bisection::gain`] per proposal makes
//! the common rejected case cost two `O(deg)` adjacency walks; the
//! cache turns it into two array reads plus one edge lookup, and pays
//! the `O(deg)` walk only on *accepted* moves — the classic
//! Fiduccia-Mattheyses maintained-gain discipline applied to annealing.
//! KL and FM initialize their per-pass gain state from the same cache
//! instead of rebuilding equivalent arrays locally.

use bisect_graph::{Graph, VertexId};

use crate::partition::{Bisection, Side};

/// Per-vertex gain cache with per-side member index arrays.
///
/// Invariants, established by [`GainCache::init`] and maintained by
/// [`GainCache::record_move`] (void after [`GainCache::gains_mut`]
/// hands the arena to a caller, until the next `init`):
///
/// * `gain(v) == p.gain(g, v)` for every vertex — gains are *exact*
///   integers, never approximations, so cached and recomputed proposal
///   evaluation produce bit-identical accept decisions.
/// * `members(s)` holds exactly side `s`'s vertices: ascending after
///   `init`, order unspecified (swap-remove) after moves.
///
/// All storage is retained across runs (`init` only grows buffers), so
/// a workspace-resident cache allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct GainCache {
    /// `gains[v]` = weight of v's cross edges − weight of v's internal
    /// edges, for the bisection the cache was initialized against.
    gains: Vec<i64>,
    /// Vertex lists per side, indexed by [`Side::index`].
    members: [Vec<VertexId>; 2],
    /// `pos[v]` = index of `v` within its side's member list.
    pos: Vec<u32>,
}

impl GainCache {
    /// (Re)builds the cache for bisection `p` of `g` in `O(V + E)`,
    /// reusing all previously allocated storage.
    pub fn init(&mut self, g: &Graph, p: &Bisection) {
        let n = g.num_vertices();
        self.gains.clear();
        self.pos.clear();
        self.pos.resize(n, 0);
        for side in &mut self.members {
            side.clear();
        }
        for v in g.vertices() {
            self.gains.push(p.gain(g, v));
            let side = &mut self.members[p.side(v).index()];
            self.pos[v as usize] = side.len() as u32;
            side.push(v);
        }
    }

    /// The cached gain of moving `v` to the other side.
    #[inline]
    pub fn gain(&self, v: VertexId) -> i64 {
        self.gains[v as usize]
    }

    /// The cached pair gain `g_ab = g_a + g_b − 2δ(a, b)` for swapping
    /// `a` and `b`, which must be on opposite sides — one edge lookup
    /// instead of the two adjacency walks of [`Bisection::swap_gain`],
    /// producing the same integer.
    #[inline]
    pub fn swap_gain(&self, g: &Graph, a: VertexId, b: VertexId) -> i64 {
        let delta = g.edge_weight(a, b).unwrap_or(0) as i64;
        self.gains[a as usize] + self.gains[b as usize] - 2 * delta
    }

    /// All cached gains, indexed by vertex.
    #[inline]
    pub fn gains(&self) -> &[i64] {
        &self.gains
    }

    /// Mutable access to the gain arena, for passes (KL) that evolve
    /// *virtual* gains as vertices lock. This transfers the arena to
    /// the caller: cache invariants are void until the next
    /// [`GainCache::init`].
    #[inline]
    pub fn gains_mut(&mut self) -> &mut [i64] {
        &mut self.gains
    }

    /// The vertices currently on side `s` (ascending after
    /// [`GainCache::init`], arbitrary order after moves).
    #[inline]
    pub fn members(&self, s: Side) -> &[VertexId] {
        &self.members[s.index()]
    }

    /// Updates the cache for `v` moving to the other side, in
    /// `O(degree(v))`. Must be called while `p` still shows `v` on its
    /// *old* side (i.e. before `Bisection::move_vertex*`); `g` and `p`
    /// must be the pair the cache was initialized against.
    pub fn record_move(&mut self, g: &Graph, p: &Bisection, v: VertexId) {
        let old = p.side(v);
        // v's external and internal edge sets trade places.
        self.gains[v as usize] = -self.gains[v as usize];
        // Old-side neighbors lose an internal edge and get a cross
        // edge (gain += 2w); new-side neighbors the reverse. Graphs
        // are self-loop free (GraphError::SelfLoop), so u != v.
        for (u, w) in g.neighbors_weighted(v) {
            let w = w as i64;
            if p.side(u) == old {
                self.gains[u as usize] += 2 * w;
            } else {
                self.gains[u as usize] -= 2 * w;
            }
        }
        let oi = old.index();
        let ni = old.other().index();
        let at = self.pos[v as usize] as usize;
        let removed = self.members[oi].swap_remove(at);
        debug_assert_eq!(removed, v, "member list out of sync");
        if let Some(&swapped_in) = self.members[oi].get(at) {
            self.pos[swapped_in as usize] = at as u32;
        }
        self.pos[v as usize] = self.members[ni].len() as u32;
        self.members[ni].push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::random_balanced;
    use bisect_gen::gnp::{self, GnpParams};
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_gnp(n: usize, p: f64, seed: u64) -> Graph {
        let params = GnpParams::new(n, p).unwrap();
        gnp::sample(&mut StdRng::seed_from_u64(seed), &params)
    }

    fn assert_cache_consistent(cache: &GainCache, g: &Graph, p: &Bisection) {
        for v in g.vertices() {
            assert_eq!(cache.gain(v), p.gain(g, v), "gain of {v}");
        }
        for side in [Side::A, Side::B] {
            let members = cache.members(side);
            assert_eq!(members.len(), p.count(side), "member count of {side:?}");
            assert!(members.iter().all(|&v| p.side(v) == side));
        }
    }

    #[test]
    fn init_matches_bisection_gains() {
        let g = special::grid(7, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        assert_cache_consistent(&cache, &g, &p);
        // Member lists are ascending right after init.
        for side in [Side::A, Side::B] {
            assert!(cache.members(side).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn record_move_tracks_random_flip_sequences() {
        let g = random_gnp(60, 0.12, 5);
        let mut rng = StdRng::seed_from_u64(17);
        let mut p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        for _ in 0..200 {
            let v = rng.gen_range(0..g.num_vertices()) as VertexId;
            cache.record_move(&g, &p, v);
            p.move_vertex(&g, v);
        }
        assert_cache_consistent(&cache, &g, &p);
    }

    #[test]
    fn record_move_tracks_swaps_and_cached_swap_gain_matches() {
        let g = random_gnp(48, 0.2, 9);
        let mut rng = StdRng::seed_from_u64(23);
        let mut p = random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);
        for _ in 0..120 {
            let a = cache.members(Side::A)[rng.gen_range(0..p.count(Side::A))];
            let b = cache.members(Side::B)[rng.gen_range(0..p.count(Side::B))];
            assert_eq!(cache.swap_gain(&g, a, b), p.swap_gain(&g, a, b));
            // A swap is two single moves; refresh b's gain after a
            // moves so the a–b edge adjustment is included.
            cache.record_move(&g, &p, a);
            p.move_vertex(&g, a);
            cache.record_move(&g, &p, b);
            p.move_vertex(&g, b);
        }
        assert_cache_consistent(&cache, &g, &p);
    }

    #[test]
    fn reinit_shrinks_and_grows_with_graph() {
        let mut cache = GainCache::default();
        let big = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let p_big = random_balanced(&big, &mut rng);
        cache.init(&big, &p_big);
        let small = special::path(8);
        let p_small = random_balanced(&small, &mut rng);
        cache.init(&small, &p_small);
        assert_cache_consistent(&cache, &small, &p_small);
        assert_eq!(cache.gains().len(), 8);
    }
}
