//! The Fiduccia-Mattheyses (FM) refinement heuristic (DAC 1982) — the
//! linear-time successor of Kernighan-Lin, included as an extension and
//! ablation baseline (`ablate-*` benches): it moves *single* vertices
//! under a balance constraint instead of swapping pairs, and keeps
//! vertices in constant-time *gain buckets* instead of re-scanning
//! pairs.
//!
//! One pass: every vertex starts unlocked with its current gain. At
//! each step the best-gain unlocked vertex whose move keeps the
//! imbalance within tolerance is (virtually) moved and locked, the
//! running cut change is recorded, and its neighbors' gains are
//! updated. After all moves, the best balanced prefix is applied if it
//! improves the cut. Passes repeat to a fixpoint.
//!
//! [`BoundaryFm`] is the boundary-localized variant: instead of
//! inserting all `V` vertices into the gain buckets each pass, it seeds
//! them with only the current *boundary* (vertices with a cut edge,
//! tracked incrementally by [`crate::gain_cache::GainCache`]) and pulls
//! interior vertices in lazily as moves reach them — a pass costs
//! `O(boundary + touched)` instead of `O(V)`, which is the multilevel
//! win once coarsening has shrunk the cut region to a sliver of the
//! graph. It also implements the projected-cache protocol
//! ([`crate::bisector::Refiner::refine_projected_counted`]) so
//! uncoarsening ladders never rebuild its gain state per level.

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::partition::{Bisection, Side};
use crate::seed;
use crate::workspace::Workspace;

/// The FM bisection algorithm.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, fm::FiducciaMattheyses};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(8, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = FiducciaMattheyses::new().bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiducciaMattheyses {
    max_passes: usize,
}

impl Default for FiducciaMattheyses {
    fn default() -> FiducciaMattheyses {
        FiducciaMattheyses::new()
    }
}

impl FiducciaMattheyses {
    /// FM with passes run to a fixpoint (bounded by a safety cap).
    pub fn new() -> FiducciaMattheyses {
        FiducciaMattheyses { max_passes: 64 }
    }

    /// Limits the number of passes.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> FiducciaMattheyses {
        assert!(max_passes > 0, "at least one pass is required");
        self.max_passes = max_passes;
        self
    }

    /// Runs one FM pass in place; returns the cut improvement (0 at a
    /// fixpoint). The bisection must be balanced on entry and stays
    /// balanced.
    ///
    /// Convenience wrapper over [`FiducciaMattheyses::pass_in`] with a
    /// throwaway workspace.
    pub fn pass(&self, g: &Graph, p: &mut Bisection) -> u64 {
        self.pass_in(g, p, &mut Workspace::new())
    }

    /// As [`FiducciaMattheyses::pass`], drawing the gain buckets, the
    /// working bisection, and every per-move array from `ws` — no heap
    /// allocations once the workspace is warm.
    // lint: allow(no-panic) — pass-loop expects: both prepare branches leave
    // fm_work populated, and `choice` is Some only when that bucket had a
    // peek.
    pub fn pass_in(&self, g: &Graph, p: &mut Bisection, ws: &mut Workspace) -> u64 {
        let n = g.num_vertices();
        if n < 2 {
            return 0;
        }
        let max_weight = g.vertices().map(|v| g.vertex_weight(v)).max().unwrap_or(1);
        let base_tol = if g.is_unit_weighted() {
            g.total_vertex_weight() % 2
        } else {
            max_weight
        };
        // During the pass a single move may overshoot balance by one
        // vertex: moving weight w changes the side *difference* by 2w,
        // so the classic FM criterion allows a difference up to twice
        // the largest vertex weight.
        let pass_tol = base_tol.max(2 * max_weight);

        let max_wdeg = g
            .vertices()
            .map(|v| g.weighted_degree(v))
            .max()
            .unwrap_or(0)
            .min(i64::MAX as u64) as i64;
        // Initial gains come from the shared cache arena (one O(V + E)
        // sweep, same integers SA maintains incrementally).
        ws.gain_cache.init(g, p);
        let buckets = &mut ws.fm_buckets;
        for b in buckets.iter_mut() {
            b.reset(n, max_wdeg);
        }
        for v in g.vertices() {
            buckets[p.side(v).index()].insert(v, ws.gain_cache.gain(v));
        }

        if let Some(w) = ws.fm_work.as_mut() {
            w.copy_from(p);
        } else {
            // lint: allow(zero-alloc) — one-time workspace warm-up, recycled afterwards
            ws.fm_work = Some(p.clone());
        }
        let work = ws.fm_work.as_mut().expect("just populated");
        ws.locked.clear();
        ws.locked.resize(n, false);
        let locked = &mut ws.locked;
        ws.fm_moves.clear();
        let moves = &mut ws.fm_moves;
        ws.fm_cumulative.clear();
        let cumulative = &mut ws.fm_cumulative;
        ws.fm_balanced.clear();
        let balanced_after = &mut ws.fm_balanced;
        let mut running = 0i64;

        for _ in 0..n {
            // Candidate per side: its best-gain unlocked vertex, kept
            // only if moving it respects the pass tolerance.
            let mut choice: Option<(i64, Side)> = None;
            for side in [Side::A, Side::B] {
                let Some((gain, v)) = buckets[side.index()].peek_best() else {
                    continue;
                };
                let w = g.vertex_weight(v) as i64;
                let imb = work.weight(Side::A) as i64 - work.weight(Side::B) as i64;
                let new_imb = if side == Side::A {
                    imb - 2 * w
                } else {
                    imb + 2 * w
                };
                if new_imb.unsigned_abs() > pass_tol {
                    continue;
                }
                // Prefer higher gain; tie-break toward the heavier side
                // (drives the state back toward balance).
                let heavier = work.weight(side) >= work.weight(side.other());
                match choice {
                    Some((bg, bside)) => {
                        let better = gain > bg
                            || (gain == bg && heavier && work.weight(bside) < work.weight(side));
                        if better {
                            choice = Some((gain, side));
                        }
                    }
                    None => choice = Some((gain, side)),
                }
            }
            let Some((gain, side)) = choice else { break };
            let (_, v) = buckets[side.index()].pop_best().expect("peeked nonempty");
            locked[v as usize] = true;
            work.move_vertex(g, v);
            running += gain;
            moves.push(v);
            cumulative.push(running);
            balanced_after.push(work.weight_imbalance() <= base_tol);

            for (u, w) in g.neighbors_weighted(v) {
                if locked[u as usize] {
                    continue;
                }
                // v left `side`: for u still on `side` the edge became
                // external (+2w); for u on the other side it became
                // internal (−2w).
                let delta = if work.side(u) == side {
                    2 * w as i64
                } else {
                    -2 * (w as i64)
                };
                let b = &mut buckets[work.side(u).index()];
                let cur = b.gain_of(u);
                b.update(u, cur + delta);
            }
        }

        // Best prefix that ends balanced with positive improvement.
        let mut best: Option<(usize, i64)> = None;
        for (i, (&c, &ok)) in cumulative.iter().zip(balanced_after.iter()).enumerate() {
            if ok && c > 0 && best.is_none_or(|(_, bc)| c > bc) {
                best = Some((i, c));
            }
        }
        let Some((k, best_gain)) = best else { return 0 };
        let before = p.cut();
        for &v in &moves[..=k] {
            p.move_vertex(g, v);
        }
        debug_assert_eq!(p.cut(), p.recompute_cut(g));
        debug_assert_eq!(before - p.cut(), best_gain as u64);
        before - p.cut()
    }
}

impl Bisector for FiducciaMattheyses {
    fn name(&self) -> String {
        "FM".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.bisect_counted(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let init = seed::random_balanced(g, rng);
        self.refine_counted(g, init, rng, ws)
    }
}

impl Refiner for FiducciaMattheyses {
    fn refine(&self, g: &Graph, init: Bisection, rng: &mut dyn RngCore) -> Bisection {
        self.refine_counted(g, init, rng, &mut Workspace::new()).0
    }

    fn refine_counted(
        &self,
        g: &Graph,
        mut init: Bisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let mut productive = 0u64;
        for _ in 0..self.max_passes {
            if self.pass_in(g, &mut init, ws) == 0 {
                break;
            }
            productive += 1;
        }
        (init, productive)
    }
}

/// Boundary-localized FM: identical move discipline to
/// [`FiducciaMattheyses`] (best-gain single moves under the pass
/// tolerance, best balanced prefix, passes to a fixpoint), but each
/// pass seeds the gain buckets from the incrementally tracked cut
/// boundary instead of all of `V`, and cleans up only what it touched.
/// A separately tested refinement mode — not bit-identical to the
/// pinned full-scan FM (it visits candidates in boundary order), but
/// deterministic and subject to the same invariants.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, fm::BoundaryFm};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(8, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = BoundaryFm::new().bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryFm {
    max_passes: usize,
}

impl Default for BoundaryFm {
    fn default() -> BoundaryFm {
        BoundaryFm::new()
    }
}

impl BoundaryFm {
    /// Boundary FM with passes run to a fixpoint (bounded by a safety
    /// cap).
    pub fn new() -> BoundaryFm {
        BoundaryFm { max_passes: 64 }
    }

    /// Limits the number of passes.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> BoundaryFm {
        assert!(max_passes > 0, "at least one pass is required");
        self.max_passes = max_passes;
        self
    }

    /// Runs passes to a fixpoint assuming `ws.gain_cache` is already
    /// exact for `(g, p)`; leaves it exact for the refined `p`.
    /// Returns the number of productive passes.
    fn refine_with_cache(&self, g: &Graph, p: &mut Bisection, ws: &mut Workspace) -> u64 {
        let n = g.num_vertices();
        if n < 2 {
            return 0;
        }
        // Same tolerances as the full-scan pass (see pass_in).
        let max_weight = g.vertices().map(|v| g.vertex_weight(v)).max().unwrap_or(1);
        let base_tol = if g.is_unit_weighted() {
            g.total_vertex_weight() % 2
        } else {
            max_weight
        };
        let pass_tol = base_tol.max(2 * max_weight);
        let max_wdeg = g
            .vertices()
            .map(|v| g.weighted_degree(v))
            .max()
            .unwrap_or(0)
            .min(i64::MAX as u64) as i64;

        // One-time O(V) setup per refine call; each pass afterwards
        // touches only boundary + reached vertices.
        for b in ws.fm_buckets.iter_mut() {
            b.reset(n, max_wdeg);
        }
        if let Some(w) = ws.fm_work.as_mut() {
            w.copy_from(p);
        } else {
            ws.fm_work = Some(p.clone());
        }
        ws.locked.clear();
        ws.locked.resize(n, false);
        ws.fm_touched.clear();

        let mut productive = 0u64;
        for _ in 0..self.max_passes {
            if self.pass_with_cache(g, p, ws, base_tol, pass_tol) == 0 {
                break;
            }
            productive += 1;
        }
        productive
    }

    /// One boundary-seeded pass. On entry and exit: `ws.gain_cache` is
    /// exact for `(g, p)`, `ws.fm_work` mirrors `p`, `ws.fm_buckets`
    /// are empty, `ws.locked` is all-false, `ws.fm_touched` is empty.
    // lint: allow(no-panic) — pass-loop expects: refine_with_cache populated
    // fm_work before any pass, and `choice` is Some only when that bucket
    // had a peek.
    fn pass_with_cache(
        &self,
        g: &Graph,
        p: &mut Bisection,
        ws: &mut Workspace,
        base_tol: u64,
        pass_tol: u64,
    ) -> u64 {
        let cache = &ws.gain_cache;
        let buckets = &mut ws.fm_buckets;
        let touched = &mut ws.fm_touched;
        // Seed only the boundary: every vertex with a cut edge. An
        // interior vertex can only become worth moving after a neighbor
        // moves, and the update loop below inserts it the moment that
        // happens, so no candidate is ever missed.
        for &v in cache.boundary() {
            buckets[p.side(v).index()].insert(v, cache.gain(v));
            touched.push(v);
        }
        let work = ws.fm_work.as_mut().expect("fm_work prepared");
        let locked = &mut ws.locked;
        ws.fm_moves.clear();
        let moves = &mut ws.fm_moves;
        ws.fm_cumulative.clear();
        let cumulative = &mut ws.fm_cumulative;
        ws.fm_balanced.clear();
        let balanced_after = &mut ws.fm_balanced;
        let mut running = 0i64;

        loop {
            // Identical candidate choice to the full-scan pass: best
            // gain within the pass tolerance, ties toward the heavier
            // side.
            let mut choice: Option<(i64, Side)> = None;
            for side in [Side::A, Side::B] {
                let Some((gain, v)) = buckets[side.index()].peek_best() else {
                    continue;
                };
                let w = g.vertex_weight(v) as i64;
                let imb = work.weight(Side::A) as i64 - work.weight(Side::B) as i64;
                let new_imb = if side == Side::A {
                    imb - 2 * w
                } else {
                    imb + 2 * w
                };
                if new_imb.unsigned_abs() > pass_tol {
                    continue;
                }
                let heavier = work.weight(side) >= work.weight(side.other());
                match choice {
                    Some((bg, bside)) => {
                        let better = gain > bg
                            || (gain == bg && heavier && work.weight(bside) < work.weight(side));
                        if better {
                            choice = Some((gain, side));
                        }
                    }
                    None => choice = Some((gain, side)),
                }
            }
            let Some((gain, side)) = choice else { break };
            let (_, v) = buckets[side.index()].pop_best().expect("peeked nonempty");
            locked[v as usize] = true;
            // Bucket gains are exact virtual gains for `work` (seeded
            // from the exact cache while work == p, maintained below).
            work.move_vertex_with_gain(g, v, gain);
            running += gain;
            moves.push(v);
            cumulative.push(running);
            balanced_after.push(work.weight_imbalance() <= base_tol);

            for (u, w) in g.neighbors_weighted(v) {
                if locked[u as usize] {
                    continue;
                }
                let delta = if work.side(u) == side {
                    2 * w as i64
                } else {
                    -2 * (w as i64)
                };
                let b = &mut buckets[work.side(u).index()];
                if b.contains(u) {
                    let cur = b.gain_of(u);
                    b.update(u, cur + delta);
                } else {
                    // u had no moved neighbor yet (only pops remove
                    // bucket entries, and pops lock), so its virtual
                    // gain still equals the cached real gain.
                    b.insert(u, cache.gain(u) + delta);
                    touched.push(u);
                }
            }
        }

        // Best prefix that ends balanced with positive improvement.
        let mut best: Option<(usize, i64)> = None;
        for (i, (&c, &ok)) in cumulative.iter().zip(balanced_after.iter()).enumerate() {
            if ok && c > 0 && best.is_none_or(|(_, bc)| c > bc) {
                best = Some((i, c));
            }
        }
        let committed = match best {
            Some((k, _)) => k + 1,
            None => 0,
        };
        let before = p.cut();
        let cache = &mut ws.gain_cache;
        for &v in &moves[..committed] {
            // record_move wants the pre-move partition; the cached gain
            // is the exact real gain of v at this point in the prefix.
            let real_gain = cache.gain(v);
            cache.record_move(g, p, v);
            p.move_vertex_with_gain(g, v, real_gain);
        }
        // Rewind the uncommitted virtual tail so fm_work mirrors p
        // again. Each vertex moved at most once per pass, so moving it
        // back restores its side regardless of order.
        for &v in &moves[committed..] {
            work.move_vertex(g, v);
        }
        // O(touched) cleanup instead of O(V) resets.
        for &v in touched.iter() {
            for b in buckets.iter_mut() {
                if b.contains(v) {
                    b.remove(v);
                }
            }
            locked[v as usize] = false;
        }
        touched.clear();
        debug_assert_eq!(p.cut(), p.recompute_cut(g));
        debug_assert!(before >= p.cut());
        before - p.cut()
    }
}

impl Bisector for BoundaryFm {
    fn name(&self) -> String {
        "BFM".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.bisect_counted(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let init = seed::random_balanced(g, rng);
        self.refine_counted(g, init, rng, ws)
    }
}

impl Refiner for BoundaryFm {
    fn refine(&self, g: &Graph, init: Bisection, rng: &mut dyn RngCore) -> Bisection {
        self.refine_counted(g, init, rng, &mut Workspace::new()).0
    }

    fn refine_counted(
        &self,
        g: &Graph,
        mut init: Bisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        if g.num_vertices() >= 2 {
            ws.gain_cache.init(g, &init);
        }
        let passes = self.refine_with_cache(g, &mut init, ws);
        (init, passes)
    }

    fn wants_projected_cache(&self) -> bool {
        true
    }

    fn refine_projected_counted(
        &self,
        g: &Graph,
        mut init: Bisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let passes = self.refine_with_cache(g, &mut init, ws);
        (init, passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pass_never_increases_cut_and_keeps_balance() {
        let g = special::grid(6, 6);
        let fm = FiducciaMattheyses::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = seed::random_balanced(&g, &mut rng);
            let before = p.cut();
            let improvement = fm.pass(&g, &mut p);
            assert_eq!(before - p.cut(), improvement, "seed {seed}");
            assert!(p.is_balanced(&g), "seed {seed}");
        }
    }

    #[test]
    fn solves_cycle_with_best_of() {
        let g = special::cycle(24);
        let mut rng = StdRng::seed_from_u64(0);
        let best = crate::bisector::best_of(&FiducciaMattheyses::new(), &g, 5, &mut rng);
        assert_eq!(best.cut(), 2);
    }

    #[test]
    fn comparable_to_kl_on_grid() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(12);
        let fm = crate::bisector::best_of(&FiducciaMattheyses::new(), &g, 5, &mut rng);
        assert!(fm.cut() <= 14, "FM cut {}", fm.cut());
    }

    #[test]
    fn odd_vertex_count() {
        let g = special::binary_tree(31);
        let mut rng = StdRng::seed_from_u64(3);
        let p = FiducciaMattheyses::new().bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn weighted_coarse_graph() {
        use bisect_graph::{contraction, matching};
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let m = matching::random_maximal(&g, &mut rng);
        let c = contraction::contract_matching(&g, &m);
        let coarse = c.coarse();
        let init = seed::weight_balanced_random(coarse, &mut rng);
        let p = FiducciaMattheyses::new().refine(coarse, init, &mut rng);
        assert!(p.is_balanced(coarse));
        assert_eq!(p.cut(), p.recompute_cut(coarse));
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 0..4usize {
            let g = bisect_graph::Graph::empty(n);
            let p = FiducciaMattheyses::new().bisect(&g, &mut rng);
            assert_eq!(p.cut(), 0);
        }
    }

    #[test]
    fn fixpoint_returns_zero() {
        let g = special::grid(4, 4);
        let fm = FiducciaMattheyses::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = fm.bisect(&g, &mut rng);
        assert_eq!(fm.pass(&g, &mut p), 0);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = FiducciaMattheyses::new().with_max_passes(0);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn boundary_zero_passes_rejected() {
        let _ = BoundaryFm::new().with_max_passes(0);
    }

    #[test]
    fn boundary_refine_never_increases_cut_and_keeps_balance() {
        let g = special::grid(6, 6);
        let bfm = BoundaryFm::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = seed::random_balanced(&g, &mut rng);
            let before = p.cut();
            let refined = bfm.refine(&g, p, &mut rng);
            assert!(refined.cut() <= before, "seed {seed}");
            assert!(refined.is_balanced(&g), "seed {seed}");
            assert_eq!(refined.cut(), refined.recompute_cut(&g), "seed {seed}");
        }
    }

    #[test]
    fn boundary_solves_cycle_with_best_of() {
        let g = special::cycle(24);
        let mut rng = StdRng::seed_from_u64(0);
        let best = crate::bisector::best_of(&BoundaryFm::new(), &g, 5, &mut rng);
        assert_eq!(best.cut(), 2);
    }

    #[test]
    fn boundary_refine_leaves_cache_exact() {
        let g = special::grid(8, 8);
        let bfm = BoundaryFm::new();
        let mut ws = Workspace::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let (refined, _) = bfm.refine_counted(&g, init, &mut rng, &mut ws);
            for v in g.vertices() {
                assert_eq!(ws.gain_cache().gain(v), refined.gain(&g, v), "seed {seed}");
                let ext: u64 = g
                    .neighbors_weighted(v)
                    .filter(|&(u, _)| refined.side(u) != refined.side(v))
                    .map(|(_, w)| w)
                    .sum();
                assert_eq!(ws.gain_cache().ext(v), ext, "seed {seed}");
            }
        }
    }

    #[test]
    fn boundary_projected_entry_matches_plain_refine() {
        // refine_projected_counted with an externally prepared cache
        // must equal refine_counted (which builds its own).
        let g = special::grid(8, 8);
        let bfm = BoundaryFm::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = seed::random_balanced(&g, &mut rng);
            let mut ws_a = Workspace::new();
            let (plain, passes_a) = bfm.refine_counted(&g, init.clone(), &mut rng, &mut ws_a);
            let mut ws_b = Workspace::new();
            ws_b.prepare_gain_cache(&g, &init);
            let (projected, passes_b) = bfm.refine_projected_counted(&g, init, &mut rng, &mut ws_b);
            assert_eq!(plain, projected, "seed {seed}");
            assert_eq!(passes_a, passes_b, "seed {seed}");
        }
    }

    #[test]
    fn boundary_refine_is_deterministic_across_workspace_reuse() {
        let g = special::grid(10, 6);
        let bfm = BoundaryFm::new();
        let mut ws = Workspace::new();
        let mut rng = StdRng::seed_from_u64(42);
        let init = seed::random_balanced(&g, &mut rng);
        let (a, _) = bfm.refine_counted(&g, init.clone(), &mut rng, &mut ws);
        // Reused (warm, differently sized) workspace must not change
        // the result.
        let small = special::grid(3, 3);
        let mut srng = StdRng::seed_from_u64(1);
        let sinit = seed::random_balanced(&small, &mut srng);
        let _ = bfm.refine_counted(&small, sinit, &mut srng, &mut ws);
        let (b, _) = bfm.refine_counted(&g, init, &mut rng, &mut ws);
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_weighted_coarse_graph() {
        use bisect_graph::{contraction, matching};
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let m = matching::random_maximal(&g, &mut rng);
        let c = contraction::contract_matching(&g, &m);
        let coarse = c.coarse();
        let init = seed::weight_balanced_random(coarse, &mut rng);
        let p = BoundaryFm::new().refine(coarse, init, &mut rng);
        assert!(p.is_balanced(coarse));
        assert_eq!(p.cut(), p.recompute_cut(coarse));
    }

    #[test]
    fn boundary_tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 0..4usize {
            let g = bisect_graph::Graph::empty(n);
            let p = BoundaryFm::new().bisect(&g, &mut rng);
            assert_eq!(p.cut(), 0);
        }
    }
}
