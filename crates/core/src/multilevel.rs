//! Multilevel bisection — *recursive* compaction — now a thin,
//! deprecated shim over the [`pipeline`](crate::pipeline) engine.
//!
//! `Multilevel::new(inner)` delegates to
//! [`pipeline::engine::run`](crate::pipeline::engine::run) with
//! [`CoarsenDepth::ToSize`](crate::pipeline::CoarsenDepth::ToSize) and
//! is bit-identical — same rng draws, same bisection — to both the
//! pre-pipeline implementation and to
//! [`Pipeline::multilevel`](crate::pipeline::Pipeline::multilevel),
//! which new code should use directly.

#![allow(deprecated)]

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::partition::Bisection;
use crate::pipeline::{engine, CoarsenDepth, RandomMatching, WeightBalancedInit};
use crate::workspace::Workspace;

/// Multilevel (V-cycle) bisection around any [`Refiner`].
///
/// Deprecated: this is now a shim over the pipeline engine; prefer
/// [`Pipeline::multilevel`](crate::pipeline::Pipeline::multilevel),
/// which produces bit-identical results.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::multilevel(refiner)` or `Pipeline::multilevel_to(refiner, size)` — bit-identical results"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct Multilevel<B> {
    inner: B,
    coarsest_size: usize,
}

impl<B: Refiner> Multilevel<B> {
    /// Multilevel bisection refining with `inner` at every level,
    /// coarsening down to at most 32 vertices by default.
    pub fn new(inner: B) -> Multilevel<B> {
        Multilevel {
            inner,
            coarsest_size: crate::pipeline::DEFAULT_COARSEST_SIZE,
        }
    }

    /// Sets the size at which coarsening stops.
    ///
    /// # Panics
    ///
    /// Panics if `coarsest_size < 2`.
    pub fn with_coarsest_size(mut self, coarsest_size: usize) -> Multilevel<B> {
        assert!(coarsest_size >= 2, "coarsest size must be at least 2");
        self.coarsest_size = coarsest_size;
        self
    }

    /// The wrapped refiner.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Refiner> Bisector for Multilevel<B> {
    fn name(&self) -> String {
        format!("ML-{}", self.inner.name())
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        engine::run(
            &RandomMatching,
            CoarsenDepth::ToSize(self.coarsest_size),
            &WeightBalancedInit,
            &self.inner,
            g,
            rng,
            ws,
        )
        // lint: allow(no-panic) — the fixed stage list contains no fallible stage
        .expect("multilevel stages are infallible")
        .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisector::best_of;
    use crate::fm::FiducciaMattheyses;
    use crate::kl::KernighanLin;
    use crate::pipeline::Pipeline;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn name_includes_inner() {
        assert_eq!(Multilevel::new(KernighanLin::new()).name(), "ML-KL");
    }

    #[test]
    fn balanced_and_consistent_on_grid() {
        let g = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn near_optimal_on_grid() {
        let g = special::grid(12, 12);
        let mut rng = StdRng::seed_from_u64(1989);
        let p = best_of(&Multilevel::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(p.cut() <= 16, "ML-KL cut {} (optimal 12)", p.cut());
    }

    #[test]
    fn works_with_fm_inner() {
        let g = special::grid(9, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let p = Multilevel::new(FiducciaMattheyses::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = special::cycle(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn edgeless_graph() {
        let g = bisect_graph::Graph::empty(10);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn handles_sparse_planted_instance_well() {
        // Multilevel should do at least as well as one-level compaction
        // in the sparse regime, and both should land near the planted
        // bisection.
        let params = bisect_gen::gbreg::GbregParams::new(400, 8, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let ml = best_of(&Multilevel::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ml.cut() <= 16, "ML cut {} vs planted 8", ml.cut());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_coarsest_size_rejected() {
        let _ = Multilevel::new(KernighanLin::new()).with_coarsest_size(1);
    }

    #[test]
    fn custom_coarsest_size() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Multilevel::new(KernighanLin::new())
            .with_coarsest_size(8)
            .bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn shim_is_bit_identical_to_pipeline_multilevel() {
        let g = special::grid(10, 10);
        let legacy = Multilevel::new(KernighanLin::new()).bisect(&g, &mut StdRng::seed_from_u64(9));
        let piped =
            Pipeline::multilevel(KernighanLin::new()).bisect(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(legacy, piped);

        let legacy8 = Multilevel::new(KernighanLin::new())
            .with_coarsest_size(8)
            .bisect(&g, &mut StdRng::seed_from_u64(9));
        let piped8 = Pipeline::multilevel_to(KernighanLin::new(), 8)
            .unwrap()
            .bisect(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(legacy8, piped8);
    }
}
