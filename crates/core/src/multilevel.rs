//! Multilevel bisection — *recursive* compaction.
//!
//! The paper applies one level of compaction. Recursing — contract
//! matchings until the graph is tiny, bisect the tiny graph, then
//! project back level by level with refinement at each level — is
//! exactly the multilevel scheme that later partitioners (Chaco, METIS,
//! KaHIP) built on this idea. It is included as the paper's natural
//! "future work" extension and compared against single-level compaction
//! in the `ablate-multilevel` benchmark.

use bisect_graph::{contraction, Graph};
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::partition::{rebalance, Bisection};
use crate::seed;

/// Multilevel (V-cycle) bisection around any [`Refiner`].
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, multilevel::Multilevel, kl::KernighanLin};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(12, 12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ml = Multilevel::new(KernighanLin::new());
/// let p = ml.bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Multilevel<B> {
    inner: B,
    coarsest_size: usize,
}

impl<B: Refiner> Multilevel<B> {
    /// Multilevel bisection refining with `inner` at every level,
    /// coarsening down to at most 32 vertices by default.
    pub fn new(inner: B) -> Multilevel<B> {
        Multilevel {
            inner,
            coarsest_size: 32,
        }
    }

    /// Sets the size at which coarsening stops.
    ///
    /// # Panics
    ///
    /// Panics if `coarsest_size < 2`.
    pub fn with_coarsest_size(mut self, coarsest_size: usize) -> Multilevel<B> {
        assert!(coarsest_size >= 2, "coarsest size must be at least 2");
        self.coarsest_size = coarsest_size;
        self
    }

    /// The wrapped refiner.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Refiner> Bisector for Multilevel<B> {
    fn name(&self) -> String {
        format!("ML-{}", self.inner.name())
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        // Coarsening phase: ladder of contractions, finest first.
        let ladder = contraction::coarsen_to(g, self.coarsest_size, rng);

        // Initial bisection of the coarsest graph.
        let coarsest: &Graph = ladder.last().map_or(g, |c| c.coarse());
        let init = seed::weight_balanced_random(coarsest, rng);
        let mut current = self.inner.refine(coarsest, init, rng);

        // Uncoarsening phase: project and refine level by level. The
        // fine graph of ladder level `i` is the coarse graph of level
        // `i − 1` (or the input graph at the bottom).
        for i in (0..ladder.len()).rev() {
            let fine: &Graph = if i == 0 { g } else { ladder[i - 1].coarse() };
            let mut projected =
                Bisection::from_sides(fine, ladder[i].project_sides(current.sides()))
                    .expect("projection matches fine vertex count");
            rebalance(fine, &mut projected);
            current = self.inner.refine(fine, projected, rng);
        }
        if !current.is_balanced(g) {
            rebalance(g, &mut current);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisector::best_of;
    use crate::fm::FiducciaMattheyses;
    use crate::kl::KernighanLin;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn name_includes_inner() {
        assert_eq!(Multilevel::new(KernighanLin::new()).name(), "ML-KL");
    }

    #[test]
    fn balanced_and_consistent_on_grid() {
        let g = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn near_optimal_on_grid() {
        let g = special::grid(12, 12);
        let mut rng = StdRng::seed_from_u64(1989);
        let p = best_of(&Multilevel::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(p.cut() <= 16, "ML-KL cut {} (optimal 12)", p.cut());
    }

    #[test]
    fn works_with_fm_inner() {
        let g = special::grid(9, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let p = Multilevel::new(FiducciaMattheyses::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = special::cycle(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn edgeless_graph() {
        let g = bisect_graph::Graph::empty(10);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Multilevel::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn handles_sparse_planted_instance_well() {
        // Multilevel should do at least as well as one-level compaction
        // in the sparse regime, and both should land near the planted
        // bisection.
        let params = bisect_gen::gbreg::GbregParams::new(400, 8, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let ml = best_of(&Multilevel::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ml.cut() <= 16, "ML cut {} vs planted 8", ml.cut());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_coarsest_size_rejected() {
        let _ = Multilevel::new(KernighanLin::new()).with_coarsest_size(1);
    }

    #[test]
    fn custom_coarsest_size() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Multilevel::new(KernighanLin::new())
            .with_coarsest_size(8)
            .bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }
}
