//! Bucket-array gain structures: [`GainBuckets`] is the classic
//! Fiduccia-Mattheyses constant-time structure shared by the graph and
//! netlist FM refiners; [`SortedBuckets`] is the ordered variant behind
//! Kernighan-Lin's incremental pair selection. Both support `reset` so
//! a [`crate::workspace::Workspace`] can reuse their allocations across
//! passes and trials.

use bisect_graph::VertexId;

/// Bucket-array priority structure over vertices/cells keyed by gain:
/// all operations O(1) amortized (plus bucket-range scans bounded by
/// the gain radius).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct GainBuckets {
    offset: i64,
    buckets: Vec<Vec<VertexId>>,
    /// Position of each element inside its bucket; `u32::MAX` = absent.
    pos: Vec<u32>,
    gain: Vec<i64>,
    max_idx: usize,
    len: usize,
}

impl GainBuckets {
    /// A structure for elements `0..num_elements` with gains in
    /// `[-max_gain_abs, max_gain_abs]`. Production paths reuse a
    /// workspace-resident instance via [`GainBuckets::reset`]; the
    /// standalone constructor remains for unit tests.
    #[cfg(test)]
    pub(crate) fn new(num_elements: usize, max_gain_abs: i64) -> GainBuckets {
        let width = (2 * max_gain_abs + 1).max(1) as usize;
        GainBuckets {
            offset: max_gain_abs,
            buckets: vec![Vec::new(); width],
            pos: vec![u32::MAX; num_elements],
            gain: vec![0; num_elements],
            max_idx: 0,
            len: 0,
        }
    }

    /// Reconfigures the structure for a new element count and gain
    /// radius, keeping every previously grown allocation. Equivalent to
    /// `*self = GainBuckets::new(num_elements, max_gain_abs)` but free
    /// of heap traffic once capacities have warmed up.
    pub(crate) fn reset(&mut self, num_elements: usize, max_gain_abs: i64) {
        let width = (2 * max_gain_abs + 1).max(1) as usize;
        self.offset = max_gain_abs;
        if self.buckets.len() < width {
            // lint: allow(zero-alloc) — grows only when the gain radius widens (warm-up)
            self.buckets.resize_with(width, Vec::new);
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.pos.clear();
        self.pos.resize(num_elements, u32::MAX);
        self.gain.clear();
        self.gain.resize(num_elements, 0);
        self.max_idx = 0;
        self.len = 0;
    }

    fn index(&self, gain: i64) -> usize {
        let idx = gain + self.offset;
        debug_assert!(
            idx >= 0 && (idx as usize) < self.buckets.len(),
            "gain {gain} out of range ±{}",
            self.offset
        );
        idx as usize
    }

    pub(crate) fn contains(&self, v: VertexId) -> bool {
        self.pos[v as usize] != u32::MAX
    }

    pub(crate) fn gain_of(&self, v: VertexId) -> i64 {
        debug_assert!(self.contains(v));
        self.gain[v as usize]
    }

    pub(crate) fn insert(&mut self, v: VertexId, gain: i64) {
        debug_assert!(!self.contains(v));
        let idx = self.index(gain);
        self.pos[v as usize] = self.buckets[idx].len() as u32;
        self.gain[v as usize] = gain;
        self.buckets[idx].push(v);
        self.max_idx = self.max_idx.max(idx);
        self.len += 1;
    }

    pub(crate) fn remove(&mut self, v: VertexId) {
        debug_assert!(self.contains(v));
        let idx = self.index(self.gain[v as usize]);
        let p = self.pos[v as usize] as usize;
        let bucket = &mut self.buckets[idx];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        self.pos[v as usize] = u32::MAX;
        self.len -= 1;
    }

    pub(crate) fn update(&mut self, v: VertexId, new_gain: i64) {
        self.remove(v);
        self.insert(v, new_gain);
    }

    #[cfg(test)]
    pub(crate) fn adjust(&mut self, v: VertexId, delta: i64) {
        if delta != 0 {
            let cur = self.gain_of(v);
            self.update(v, cur + delta);
        }
    }

    pub(crate) fn peek_best(&mut self) -> Option<(i64, VertexId)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.max_idx].is_empty() {
            debug_assert!(self.max_idx > 0, "len > 0 but all buckets empty");
            self.max_idx -= 1;
        }
        // lint: allow(no-panic) — the loop above stopped on a nonempty bucket
        let v = *self.buckets[self.max_idx].last().expect("bucket nonempty");
        Some((self.max_idx as i64 - self.offset, v))
    }

    pub(crate) fn pop_best(&mut self) -> Option<(i64, VertexId)> {
        let (gain, v) = self.peek_best()?;
        self.remove(v);
        Some((gain, v))
    }
}

/// Ordered bucket array behind Kernighan-Lin's incremental pair
/// selection: one bucket per gain value, each bucket kept sorted by
/// vertex id. [`SortedBuckets::iter_desc`] therefore yields candidates
/// in strictly descending `(gain, vertex)` order — the exact order the
/// `BTreeSet`-based sorted-pruning scan visits them — so the
/// incremental strategy makes bit-identical selections while
/// insert/remove touch only one bucket (a binary search plus a small
/// `memmove`) instead of rebuilding or rescanning anything.
#[derive(Debug, Clone, Default)]
pub(crate) struct SortedBuckets {
    offset: i64,
    buckets: Vec<Vec<VertexId>>,
    max_idx: usize,
    len: usize,
}

impl SortedBuckets {
    /// Clears the structure and reconfigures it for gains in
    /// `[-max_gain_abs, max_gain_abs]`, keeping grown allocations.
    pub(crate) fn reset(&mut self, max_gain_abs: i64) {
        let width = (2 * max_gain_abs + 1).max(1) as usize;
        self.offset = max_gain_abs;
        if self.buckets.len() < width {
            // lint: allow(zero-alloc) — grows only when the gain radius widens (warm-up)
            self.buckets.resize_with(width, Vec::new);
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.max_idx = 0;
        self.len = 0;
    }

    fn index(&self, gain: i64) -> usize {
        let idx = gain + self.offset;
        debug_assert!(
            idx >= 0 && (idx as usize) < self.buckets.len(),
            "gain {gain} out of range ±{}",
            self.offset
        );
        idx as usize
    }

    pub(crate) fn insert(&mut self, v: VertexId, gain: i64) {
        let idx = self.index(gain);
        let bucket = &mut self.buckets[idx];
        let at = bucket.partition_point(|&u| u < v);
        debug_assert!(bucket.get(at) != Some(&v), "duplicate insert of {v}");
        bucket.insert(at, v);
        self.max_idx = self.max_idx.max(idx);
        self.len += 1;
    }

    pub(crate) fn remove(&mut self, v: VertexId, gain: i64) {
        let idx = self.index(gain);
        let bucket = &mut self.buckets[idx];
        let at = bucket.partition_point(|&u| u < v);
        debug_assert!(bucket.get(at) == Some(&v), "removing absent {v}");
        bucket.remove(at);
        self.len -= 1;
    }

    /// Iterates live entries in descending `(gain, vertex)` order.
    pub(crate) fn iter_desc(&self) -> impl Iterator<Item = (i64, VertexId)> + '_ {
        let top = self.max_idx.min(self.buckets.len().saturating_sub(1));
        let offset = self.offset;
        (0..=top)
            .rev()
            .flat_map(move |idx| {
                self.buckets
                    .get(idx)
                    .into_iter()
                    .flat_map(|bucket| bucket.iter().rev())
                    .map(move |&v| (idx as i64 - offset, v))
            })
            .take(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut b = GainBuckets::new(4, 3);
        b.insert(0, -2);
        b.insert(1, 3);
        b.insert(2, 0);
        assert_eq!(b.peek_best(), Some((3, 1)));
        assert_eq!(b.pop_best(), Some((3, 1)));
        assert_eq!(b.peek_best(), Some((0, 2)));
        b.update(0, 2);
        assert_eq!(b.peek_best(), Some((2, 0)));
        b.remove(2);
        b.remove(0);
        assert_eq!(b.peek_best(), None);
    }

    #[test]
    fn same_gain_all_retrievable() {
        let mut b = GainBuckets::new(3, 1);
        b.insert(0, 1);
        b.insert(1, 1);
        b.insert(2, 1);
        let mut got: Vec<_> = std::iter::from_fn(|| b.pop_best().map(|(_, v)| v)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut b = GainBuckets::new(2, 5);
        b.insert(0, 0);
        b.insert(1, 1);
        b.adjust(0, 4);
        assert_eq!(b.peek_best(), Some((4, 0)));
        b.adjust(0, -8);
        assert_eq!(b.peek_best(), Some((1, 1)));
        assert_eq!(b.gain_of(0), -4);
    }

    #[test]
    fn zero_adjust_is_noop() {
        let mut b = GainBuckets::new(1, 2);
        b.insert(0, 1);
        b.adjust(0, 0);
        assert_eq!(b.gain_of(0), 1);
    }

    #[test]
    fn reset_behaves_like_new() {
        let mut b = GainBuckets::new(3, 2);
        b.insert(0, 2);
        b.insert(1, -1);
        b.reset(5, 4);
        assert_eq!(b.peek_best(), None);
        assert!(!b.contains(0));
        b.insert(4, 4);
        b.insert(2, -4);
        assert_eq!(b.pop_best(), Some((4, 4)));
        assert_eq!(b.pop_best(), Some((-4, 2)));
        assert_eq!(b.pop_best(), None);
    }

    #[test]
    fn sorted_buckets_iterates_descending_gain_then_vertex() {
        let mut s = SortedBuckets::default();
        s.reset(3);
        for (v, g) in [(5, 1), (2, 1), (9, 3), (1, -2), (7, 1)] {
            s.insert(v, g);
        }
        let order: Vec<_> = s.iter_desc().collect();
        assert_eq!(order, vec![(3, 9), (1, 7), (1, 5), (1, 2), (-2, 1)]);
        s.remove(5, 1);
        let order: Vec<_> = s.iter_desc().collect();
        assert_eq!(order, vec![(3, 9), (1, 7), (1, 2), (-2, 1)]);
    }

    #[test]
    fn sorted_buckets_reset_clears_and_reuses() {
        let mut s = SortedBuckets::default();
        s.reset(2);
        s.insert(0, 2);
        s.insert(1, -2);
        assert_eq!(s.iter_desc().count(), 2);
        s.reset(1);
        assert_eq!(s.iter_desc().count(), 0);
        s.insert(3, -1);
        assert_eq!(s.iter_desc().collect::<Vec<_>>(), vec![(-1, 3)]);
    }

    #[test]
    fn sorted_buckets_empty_before_reset() {
        let s = SortedBuckets::default();
        assert_eq!(s.iter_desc().count(), 0);
    }
}
