//! Property tests for the parallel netlist stack: gain-cache
//! projection against from-scratch rebuilds after arbitrary
//! accepted-move sequences, and fixed-thread-count determinism of
//! `ParallelNetlistFm` with net-cut cross-checks.

use bisect_core::netlist::{
    NetlistBisection, NetlistGainCache, NetlistRefiner, ParallelCellMatching, ParallelNetlistFm,
};
use bisect_core::workspace::Workspace;
use bisect_graph::hypergraph::{contract_cells, random_cell_matching, Netlist, NetlistBuilder};
use bisect_graph::VertexId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn random_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(cells);
    for _ in 0..nets {
        let size = rng.gen_range(2..=5usize.min(cells));
        let mut pins: Vec<u32> = (0..cells as u32).collect();
        pins.shuffle(&mut rng);
        let w = rng.gen_range(1..=3u64);
        b.add_weighted_net(&pins[..size], w).unwrap();
    }
    b.build()
}

fn assert_cache_matches_fresh(
    cache: &NetlistGainCache,
    nl: &Netlist,
    p: &NetlistBisection,
) -> Result<(), TestCaseError> {
    let mut fresh = NetlistGainCache::default();
    fresh.init(nl, p);
    for c in nl.cells() {
        prop_assert_eq!(cache.gain(c), fresh.gain(c), "gain of {}", c);
        prop_assert_eq!(
            cache.cut_degree(c),
            fresh.cut_degree(c),
            "cut degree of {}",
            c
        );
        prop_assert_eq!(
            cache.is_boundary(c),
            fresh.is_boundary(c),
            "boundary flag of {}",
            c
        );
    }
    let mut a: Vec<VertexId> = cache.boundary().to_vec();
    let mut b: Vec<VertexId> = fresh.boundary().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    prop_assert_eq!(a, b, "boundary set");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projection through an uncoarsening step, after an arbitrary
    /// accepted-move history at the coarse level, must agree with an
    /// O(cells + pins) rebuild — and must keep agreeing after further
    /// fine-level moves.
    #[test]
    fn projection_matches_from_scratch_rebuild(
        cells in 6usize..36,
        nets in 4usize..40,
        netlist_seed in 0u64..10_000,
        move_seed in 0u64..10_000,
        coarse_moves in 0usize..12,
        fine_moves in 0usize..12,
    ) {
        let fine = random_netlist(cells, nets, netlist_seed);
        let mut rng = StdRng::seed_from_u64(move_seed);
        let pairs = random_cell_matching(&fine, &mut rng);
        prop_assume!(!pairs.is_empty());
        let contraction = contract_cells(&fine, &pairs);
        let coarse = contraction.coarse();

        let mut cp = NetlistBisection::random_balanced(coarse, &mut rng);
        let mut cache = NetlistGainCache::default();
        cache.init(coarse, &cp);
        for _ in 0..coarse_moves {
            let c = rng.gen_range(0..coarse.num_cells()) as VertexId;
            cache.record_move(coarse, &cp, c);
            cp.move_cell(coarse, c);
        }

        let mut fp =
            NetlistBisection::from_sides(&fine, contraction.project_sides(cp.sides())).unwrap();
        cache.project(&fine, &fp, contraction.fine_to_coarse());
        assert_cache_matches_fresh(&cache, &fine, &fp)?;

        for _ in 0..fine_moves {
            let c = rng.gen_range(0..fine.num_cells()) as VertexId;
            cache.record_move(&fine, &fp, c);
            fp.move_cell(&fine, c);
        }
        assert_cache_matches_fresh(&cache, &fine, &fp)?;
    }

    /// `ParallelNetlistFm` at 1/2/4 threads: bit-identical across
    /// repeat runs at each fixed thread count, never worse than the
    /// start, balanced, and with the maintained net cut agreeing with a
    /// brute-force recompute on the untouched netlist.
    #[test]
    fn parallel_netlist_fm_is_deterministic_per_thread_count(
        cells in 8usize..48,
        nets in 6usize..60,
        netlist_seed in 0u64..10_000,
        init_seed in 0u64..10_000,
    ) {
        let nl = random_netlist(cells, nets, netlist_seed);
        let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(init_seed));
        for threads in [1usize, 2, 4] {
            let pfm = ParallelNetlistFm::new().with_threads(threads);
            let run = || {
                let mut dummy = StdRng::seed_from_u64(0);
                let mut ws = Workspace::new();
                pfm.refine_counted(&nl, &[], init.clone(), &mut dummy, &mut ws)
            };
            let (a, ra) = run();
            let (b, rb) = run();
            prop_assert_eq!(&a, &b, "threads {}", threads);
            prop_assert_eq!(ra, rb, "threads {}", threads);
            prop_assert!(a.cut() <= init.cut(), "threads {}", threads);
            prop_assert!(a.is_balanced(&nl), "threads {}", threads);
            prop_assert_eq!(a.cut(), a.recompute_cut(&nl), "threads {}", threads);
        }
    }

    /// The parallel matcher composes with contraction into a valid
    /// coarsening step at any thread count: pairs are disjoint, weight
    /// is conserved, and repeat runs are identical.
    #[test]
    fn parallel_matching_contracts_validly(
        cells in 4usize..40,
        nets in 2usize..50,
        netlist_seed in 0u64..10_000,
        threads in 1usize..5,
    ) {
        let nl = random_netlist(cells, nets, netlist_seed);
        let matcher = ParallelCellMatching::new().with_threads(threads);
        let pairs = matcher.matching(&nl);
        prop_assert_eq!(&pairs, &matcher.matching(&nl));
        prop_assume!(!pairs.is_empty());
        let c = contract_cells(&nl, &pairs);
        prop_assert_eq!(
            c.coarse().total_cell_weight(),
            nl.total_cell_weight()
        );
        prop_assert_eq!(
            c.coarse().num_cells(),
            nl.num_cells() - pairs.len()
        );
    }
}
