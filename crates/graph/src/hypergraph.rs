//! Hypergraph netlists: cells connected by multi-pin nets.
//!
//! The paper's motivating application — "VLSI placement and routing
//! problems" — really concerns *netlists*, where a net (hyperedge) may
//! connect more than two cells, and the quantity minimized is the
//! number of nets spanning both sides, not graph edges. The paper (and
//! its cited Goldberg-Burstein technique) works on the graph
//! abstraction; this module provides the faithful substrate so the
//! workspace can also run Fiduccia-Mattheyses in its native hypergraph
//! form (`bisect_core::netlist`) and measure what the clique
//! approximation costs.
//!
//! A [`Netlist`] stores both incidence directions in CSR form: net →
//! pins and cell → nets.

use crate::{EdgeWeight, Graph, GraphBuilder, GraphError, VertexId, VertexWeight};

/// Identifier of a net; nets of a netlist are `0..num_nets as NetId`.
pub type NetId = u32;

/// An immutable hypergraph netlist.
///
/// # Example
///
/// ```
/// use bisect_graph::hypergraph::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new(4);
/// b.add_net(&[0, 1, 2]).unwrap(); // a 3-pin net
/// b.add_net(&[2, 3]).unwrap();
/// let netlist = b.build();
/// assert_eq!(netlist.num_cells(), 4);
/// assert_eq!(netlist.num_nets(), 2);
/// assert_eq!(netlist.pins(0), &[0, 1, 2]);
/// assert_eq!(netlist.nets_of(2), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    xpins: Vec<usize>,
    pins: Vec<VertexId>,
    xnets: Vec<usize>,
    nets: Vec<NetId>,
    cell_weights: Vec<VertexWeight>,
    net_weights: Vec<EdgeWeight>,
}

impl Netlist {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.xnets.len() - 1
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.xpins.len() - 1
    }

    /// Total number of pins (sum of net sizes).
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The cells of net `n`, sorted, without duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn pins(&self, n: NetId) -> &[VertexId] {
        let n = n as usize;
        &self.pins[self.xpins[n]..self.xpins[n + 1]]
    }

    /// The nets incident to cell `c`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn nets_of(&self, c: VertexId) -> &[NetId] {
        let c = c as usize;
        &self.nets[self.xnets[c]..self.xnets[c + 1]]
    }

    /// The weight of cell `c` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cell_weight(&self, c: VertexId) -> VertexWeight {
        self.cell_weights[c as usize]
    }

    /// The weight of net `n` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn net_weight(&self, n: NetId) -> EdgeWeight {
        self.net_weights[n as usize]
    }

    /// Sum of all cell weights.
    pub fn total_cell_weight(&self) -> VertexWeight {
        self.cell_weights.iter().sum()
    }

    /// Iterates over all cell ids.
    pub fn cells(&self) -> std::ops::Range<VertexId> {
        0..self.num_cells() as VertexId
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> std::ops::Range<NetId> {
        0..self.num_nets() as NetId
    }

    /// Average pins per net (0 for zero nets).
    pub fn average_net_size(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }

    /// The *clique expansion*: every net of `k ≥ 2` pins becomes a
    /// clique on its pins, each clique edge carrying the net's weight
    /// (parallel contributions from different nets merge by summing).
    /// This is the standard graph approximation of a netlist — it
    /// over-counts multi-pin nets in the cut, which is what the
    /// hypergraph-native FM avoids.
    // lint: allow(no-panic) — netlist cell weights are positive by
    // construction, and pins are deduped in-range cells with u < v.
    pub fn to_clique_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_cells());
        for (c, &w) in self.cell_weights.iter().enumerate() {
            b.set_vertex_weight(c as VertexId, w)
                .expect("cell weights positive");
        }
        for n in self.net_ids() {
            let pins = self.pins(n);
            let w = self.net_weight(n);
            for (i, &u) in pins.iter().enumerate() {
                for &v in &pins[i + 1..] {
                    b.add_weighted_edge(u, v, w).expect("pins valid, distinct");
                }
            }
        }
        b.build()
    }

    /// Views a graph as a netlist of two-pin nets (the inverse of
    /// [`to_clique_graph`](Netlist::to_clique_graph) for ordinary
    /// graphs).
    // lint: allow(no-panic) — graph vertex weights are positive by
    // construction, and edges have in-range endpoints and positive weight.
    pub fn from_graph(g: &Graph) -> Netlist {
        let mut b = NetlistBuilder::new(g.num_vertices());
        for v in g.vertices() {
            b.set_cell_weight(v, g.vertex_weight(v))
                .expect("weights valid");
        }
        for (u, v, w) in g.edges() {
            b.add_weighted_net(&[u, v], w)
                .expect("edges are valid 2-pin nets");
        }
        b.build()
    }
}

/// The result of contracting matched cell pairs of a netlist: the
/// coarse netlist plus the fine-to-coarse cell map. Produced by
/// [`contract_cells`]; the netlist analogue of
/// [`crate::contraction::Contraction`].
#[derive(Debug, Clone)]
pub struct NetlistContraction {
    coarse: Netlist,
    fine_to_coarse: Vec<VertexId>,
}

impl NetlistContraction {
    /// The coarse (contracted) netlist.
    pub fn coarse(&self) -> &Netlist {
        &self.coarse
    }

    /// The coarse cell that fine cell `c` was merged into.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the fine netlist.
    pub fn map(&self, c: VertexId) -> VertexId {
        self.fine_to_coarse[c as usize]
    }

    /// The full fine-to-coarse cell map, indexed by fine cell id — the
    /// netlist analogue of
    /// [`crate::contraction::Contraction::fine_to_coarse`], consumed by
    /// gain-cache projection across uncoarsening steps.
    pub fn fine_to_coarse(&self) -> &[VertexId] {
        &self.fine_to_coarse
    }

    /// Projects a coarse side assignment to the fine cells.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_side.len()` differs from the coarse cell count.
    pub fn project_sides(&self, coarse_side: &[bool]) -> Vec<bool> {
        assert_eq!(
            coarse_side.len(),
            self.coarse.num_cells(),
            "side assignment length must match coarse cell count"
        );
        self.fine_to_coarse
            .iter()
            .map(|&c| coarse_side[c as usize])
            .collect()
    }
}

/// Contracts matched cell pairs (`pairs` must be vertex-disjoint) in
/// the netlist sense: coarse cell weights are summed, each net's pins
/// are mapped and deduplicated, nets left with fewer than two distinct
/// pins are dropped, and nets that become *identical* pin sets are
/// merged with summed weights — the standard hypergraph coarsening step
/// (the paper's compaction, §V, in its netlist form).
///
/// # Panics
///
/// Panics if a cell appears in two pairs, a pair repeats a cell, or a
/// cell id is out of range.
// lint: allow(no-panic) — sums of positive fine weights stay positive,
// and merged pin sets are in-range coarse cells.
pub fn contract_cells(nl: &Netlist, pairs: &[(VertexId, VertexId)]) -> NetlistContraction {
    let n = nl.num_cells();
    let mut fine_to_coarse = vec![VertexId::MAX; n];
    let mut mate = vec![VertexId::MAX; n];
    for &(a, b) in pairs {
        assert_ne!(a, b, "a cell cannot be matched with itself");
        assert!((a as usize) < n && (b as usize) < n, "pair out of range");
        assert!(
            mate[a as usize] == VertexId::MAX && mate[b as usize] == VertexId::MAX,
            "matching must be vertex-disjoint"
        );
        mate[a as usize] = b;
        mate[b as usize] = a;
    }
    let mut next: VertexId = 0;
    for c in 0..n as VertexId {
        if fine_to_coarse[c as usize] != VertexId::MAX {
            continue;
        }
        fine_to_coarse[c as usize] = next;
        let m = mate[c as usize];
        if m != VertexId::MAX {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let num_coarse = next as usize;

    let mut builder = NetlistBuilder::new(num_coarse);
    let mut weights = vec![0u64; num_coarse];
    for c in 0..n as VertexId {
        weights[fine_to_coarse[c as usize] as usize] += nl.cell_weight(c);
    }
    for (c, &w) in weights.iter().enumerate() {
        builder
            .set_cell_weight(c as VertexId, w)
            .expect("coarse weights are positive sums");
    }
    // Coarse nets, merged by identical pin sets. A BTreeMap keeps the
    // merge order-independent *and* yields nets in sorted pin order,
    // which is exactly the order the old sort-after-HashMap produced
    // (pin sets are unique keys).
    let mut merged: std::collections::BTreeMap<Vec<VertexId>, EdgeWeight> =
        std::collections::BTreeMap::new();
    for net in nl.net_ids() {
        let mut pins: Vec<VertexId> = nl
            .pins(net)
            .iter()
            .map(|&p| fine_to_coarse[p as usize])
            .collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        *merged.entry(pins).or_insert(0) += nl.net_weight(net);
    }
    for (pins, w) in merged {
        builder
            .add_weighted_net(&pins, w)
            .expect("coarse pins valid");
    }
    NetlistContraction {
        coarse: builder.build(),
        fine_to_coarse,
    }
}

/// Forms a random maximal cell matching along nets: visits cells in a
/// random order and matches each unmatched cell to an unmatched cell
/// sharing a net, preferring partners connected through *small* nets
/// (connectivity score `Σ w(net)/(|net|−1)`, hMETIS-style edge
/// coarsening). Returns the matched pairs.
pub fn random_cell_matching<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    random_cell_matching_with_skip(nl, &[], rng)
}

/// As [`random_cell_matching`], but cells flagged in `skip` are never
/// matched — neither visited nor offered as partners. An empty `skip`
/// slice skips nothing; a shorter-than-`num_cells` slice treats missing
/// entries as `false`. Multilevel pipelines use this to keep *fixed*
/// cells (terminal-propagation anchors) as singleton coarse cells so
/// their side constraint survives every coarsening level.
pub fn random_cell_matching_with_skip<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    skip: &[bool],
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    use rand::seq::SliceRandom;
    let n = nl.num_cells();
    let skipped = |c: VertexId| skip.get(c as usize).copied().unwrap_or(false);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(rng);
    let mut matched = vec![false; n];
    let mut pairs = Vec::new();
    // BTreeMap so iteration order — and with it the f64 accumulation
    // and tie-breaking below — never depends on hasher state.
    let mut score: std::collections::BTreeMap<VertexId, f64> = std::collections::BTreeMap::new();
    for &c in &order {
        if matched[c as usize] || skipped(c) {
            continue;
        }
        score.clear();
        for &net in nl.nets_of(c) {
            let pins = nl.pins(net);
            if pins.len() < 2 {
                continue;
            }
            let contribution = nl.net_weight(net) as f64 / (pins.len() - 1) as f64;
            for &p in pins {
                if p != c && !matched[p as usize] && !skipped(p) {
                    *score.entry(p).or_insert(0.0) += contribution;
                }
            }
        }
        let best = score.iter().max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(a.0))
        });
        if let Some((&partner, _)) = best {
            matched[c as usize] = true;
            matched[partner as usize] = true;
            pairs.push((c, partner));
        }
    }
    pairs
}

/// Repeatedly contracts random cell matchings until the netlist has at
/// most `target_cells` cells or a matching makes no progress. Returns
/// the ladder of contractions, finest first — the netlist analogue of
/// [`crate::contraction::coarsen_to`].
pub fn coarsen_to<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    target_cells: usize,
    rng: &mut R,
) -> Vec<NetlistContraction> {
    let mut ladder = Vec::new();
    let mut current = nl.clone();
    while current.num_cells() > target_cells {
        let pairs = random_cell_matching(&current, rng);
        if pairs.is_empty() {
            break;
        }
        let c = contract_cells(&current, &pairs);
        current = c.coarse().clone();
        ladder.push(c);
    }
    ladder
}

/// Incremental construction of a [`Netlist`].
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    num_cells: usize,
    nets: Vec<(Vec<VertexId>, EdgeWeight)>,
    cell_weights: Vec<VertexWeight>,
}

impl NetlistBuilder {
    /// A builder for a netlist on `num_cells` cells with no nets.
    pub fn new(num_cells: usize) -> NetlistBuilder {
        NetlistBuilder {
            num_cells,
            nets: Vec::new(),
            cell_weights: vec![1; num_cells],
        }
    }

    /// Adds a net with weight 1 over the given pins. Duplicate pins are
    /// merged; single-pin and empty nets are accepted (they can never
    /// be cut) to mirror real netlist files.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if a pin is out of range.
    pub fn add_net(&mut self, pins: &[VertexId]) -> Result<NetId, GraphError> {
        self.add_weighted_net(pins, 1)
    }

    /// Adds a net with the given weight.
    ///
    /// # Errors
    ///
    /// As [`add_net`](NetlistBuilder::add_net), plus
    /// [`GraphError::ZeroWeight`] for `weight == 0`.
    pub fn add_weighted_net(
        &mut self,
        pins: &[VertexId],
        weight: EdgeWeight,
    ) -> Result<NetId, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        for &p in pins {
            if p as usize >= self.num_cells {
                return Err(GraphError::VertexOutOfRange {
                    vertex: p as u64,
                    num_vertices: self.num_cells,
                });
            }
        }
        let mut sorted: Vec<VertexId> = pins.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let id = self.nets.len() as NetId;
        self.nets.push((sorted, weight));
        Ok(id)
    }

    /// Sets the weight of cell `c` (default 1).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::ZeroWeight`].
    pub fn set_cell_weight(
        &mut self,
        c: VertexId,
        weight: VertexWeight,
    ) -> Result<&mut NetlistBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if c as usize >= self.num_cells {
            return Err(GraphError::VertexOutOfRange {
                vertex: c as u64,
                num_vertices: self.num_cells,
            });
        }
        self.cell_weights[c as usize] = weight;
        Ok(self)
    }

    /// Finalizes both CSR directions.
    pub fn build(self) -> Netlist {
        let num_nets = self.nets.len();
        let mut xpins = Vec::with_capacity(num_nets + 1);
        xpins.push(0usize);
        let mut pins = Vec::new();
        let mut net_weights = Vec::with_capacity(num_nets);
        let mut cell_degree = vec![0usize; self.num_cells];
        for (net_pins, w) in &self.nets {
            pins.extend_from_slice(net_pins);
            xpins.push(pins.len());
            net_weights.push(*w);
            for &p in net_pins {
                cell_degree[p as usize] += 1;
            }
        }
        let mut xnets = vec![0usize; self.num_cells + 1];
        for c in 0..self.num_cells {
            xnets[c + 1] = xnets[c] + cell_degree[c];
        }
        let mut cursor = xnets.clone();
        let mut nets = vec![0 as NetId; xnets[self.num_cells]];
        for (n, (net_pins, _)) in self.nets.iter().enumerate() {
            for &p in net_pins {
                nets[cursor[p as usize]] = n as NetId;
                cursor[p as usize] += 1;
            }
        }
        // Nets were appended in increasing id order per cell, so the
        // per-cell lists are already sorted.
        Netlist {
            xpins,
            pins,
            xnets,
            nets,
            cell_weights: self.cell_weights,
            net_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(5);
        b.add_net(&[0, 1, 2]).unwrap();
        b.add_net(&[2, 3]).unwrap();
        b.add_weighted_net(&[0, 3, 4], 3).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let nl = sample();
        assert_eq!(nl.num_cells(), 5);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 8);
        assert!((nl.average_net_size() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn incidence_is_consistent_both_ways() {
        let nl = sample();
        for n in nl.net_ids() {
            for &c in nl.pins(n) {
                assert!(nl.nets_of(c).contains(&n), "cell {c} missing net {n}");
            }
        }
        for c in nl.cells() {
            for &n in nl.nets_of(c) {
                assert!(nl.pins(n).contains(&c), "net {n} missing cell {c}");
            }
        }
    }

    #[test]
    fn pins_sorted_and_deduped() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[3, 1, 3, 0, 1]).unwrap();
        let nl = b.build();
        assert_eq!(nl.pins(0), &[0, 1, 3]);
    }

    #[test]
    fn degenerate_nets_accepted() {
        let mut b = NetlistBuilder::new(2);
        b.add_net(&[]).unwrap();
        b.add_net(&[1]).unwrap();
        let nl = b.build();
        assert_eq!(nl.num_nets(), 2);
        assert!(nl.pins(0).is_empty());
        assert_eq!(nl.pins(1), &[1]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut b = NetlistBuilder::new(2);
        assert!(b.add_net(&[0, 5]).is_err());
        assert!(b.add_weighted_net(&[0, 1], 0).is_err());
        assert!(b.set_cell_weight(7, 1).is_err());
        assert!(b.set_cell_weight(0, 0).is_err());
    }

    #[test]
    fn weights() {
        let nl = sample();
        assert_eq!(nl.net_weight(2), 3);
        assert_eq!(nl.cell_weight(0), 1);
        assert_eq!(nl.total_cell_weight(), 5);
    }

    #[test]
    fn clique_expansion() {
        let nl = sample();
        let g = nl.to_clique_graph();
        assert_eq!(g.num_vertices(), 5);
        // Net 0 (0,1,2): edges 01, 02, 12. Net 1 (2,3): 23.
        // Net 2 (0,3,4) weight 3: 03, 04, 34 each weight 3.
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(2, 3), Some(1));
        assert_eq!(g.edge_weight(0, 4), Some(3));
        assert_eq!(g.num_edges(), 7);
    }

    #[test]
    fn from_graph_roundtrip_via_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let nl = Netlist::from_graph(&g);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.average_net_size(), 2.0);
        // Two-pin nets expand back to the same graph.
        assert_eq!(nl.to_clique_graph(), g);
    }

    #[test]
    fn empty_netlist() {
        let nl = NetlistBuilder::new(0).build();
        assert_eq!(nl.num_cells(), 0);
        assert_eq!(nl.num_nets(), 0);
        assert_eq!(nl.average_net_size(), 0.0);
    }

    #[test]
    fn contract_merges_cells_and_drops_internal_nets() {
        // Net {0,1} becomes single-pin after contracting (0,1): dropped.
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[0, 1]).unwrap();
        b.add_net(&[1, 2, 3]).unwrap();
        let nl = b.build();
        let c = contract_cells(&nl, &[(0, 1)]);
        assert_eq!(c.coarse().num_cells(), 3);
        assert_eq!(c.coarse().num_nets(), 1);
        assert_eq!(c.map(0), c.map(1));
        assert_eq!(c.coarse().cell_weight(c.map(0)), 2);
    }

    #[test]
    fn contract_merges_identical_nets() {
        // Nets {0,2} and {1,2} become identical after contracting (0,1).
        let mut b = NetlistBuilder::new(3);
        b.add_net(&[0, 2]).unwrap();
        b.add_net(&[1, 2]).unwrap();
        let nl = b.build();
        let c = contract_cells(&nl, &[(0, 1)]);
        assert_eq!(c.coarse().num_nets(), 1);
        assert_eq!(c.coarse().net_weight(0), 2);
    }

    #[test]
    fn contract_projection_shape() {
        let nl = sample();
        let c = contract_cells(&nl, &[(0, 1), (3, 4)]);
        let fine = c.project_sides(&[true, false, true]);
        assert_eq!(fine.len(), 5);
        assert_eq!(fine[0], fine[1]);
        assert_eq!(fine[3], fine[4]);
    }

    #[test]
    #[should_panic(expected = "vertex-disjoint")]
    fn contract_rejects_overlapping_pairs() {
        let nl = sample();
        let _ = contract_cells(&nl, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn random_cell_matching_is_valid() {
        use rand::SeedableRng;
        let nl = sample();
        for seed in 0..10 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = random_cell_matching(&nl, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in &pairs {
                assert_ne!(a, b);
                assert!(seen.insert(a), "cell {a} matched twice");
                assert!(seen.insert(b), "cell {b} matched twice");
                // Partners must share a net.
                assert!(
                    nl.nets_of(a).iter().any(|&n| nl.pins(n).contains(&b)),
                    "pair ({a},{b}) shares no net"
                );
            }
        }
    }

    #[test]
    fn random_cell_matching_deterministic_given_seed() {
        use rand::SeedableRng;
        let nl = sample();
        let a = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn skip_matching_never_touches_skipped_cells() {
        use rand::SeedableRng;
        let nl = wide_netlist();
        let mut skip = vec![false; nl.num_cells()];
        for c in [0usize, 7, 13, 30, 59] {
            skip[c] = true;
        }
        for seed in 0..8 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = random_cell_matching_with_skip(&nl, &skip, &mut rng);
            assert!(!pairs.is_empty());
            for &(a, b) in &pairs {
                assert!(!skip[a as usize], "skipped cell {a} was matched");
                assert!(!skip[b as usize], "skipped cell {b} was matched");
            }
        }
    }

    #[test]
    fn empty_skip_matches_plain_matching() {
        use rand::SeedableRng;
        let nl = wide_netlist();
        let a = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(3));
        let b = random_cell_matching_with_skip(&nl, &[], &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn fine_to_coarse_agrees_with_map() {
        let nl = sample();
        let c = contract_cells(&nl, &[(0, 1), (3, 4)]);
        let full = c.fine_to_coarse();
        assert_eq!(full.len(), nl.num_cells());
        for cell in nl.cells() {
            assert_eq!(full[cell as usize], c.map(cell));
        }
    }

    #[test]
    fn matching_on_netless_cells_is_empty() {
        use rand::SeedableRng;
        let nl = NetlistBuilder::new(5).build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(random_cell_matching(&nl, &mut rng).is_empty());
    }

    #[test]
    fn contraction_preserves_total_cell_weight() {
        use rand::SeedableRng;
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pairs = random_cell_matching(&nl, &mut rng);
        let c = contract_cells(&nl, &pairs);
        assert_eq!(c.coarse().total_cell_weight(), nl.total_cell_weight());
    }

    /// A netlist big enough that net merging and score tie-breaking
    /// actually occur during coarsening.
    fn wide_netlist() -> Netlist {
        let n: u32 = 60;
        let mut b = NetlistBuilder::new(n as usize);
        for c in 0..n {
            // Local 3-pin nets (rings) plus long weighted nets, so
            // contraction produces duplicate pin sets to merge.
            b.add_net(&[c, (c + 1) % n, (c + 2) % n]).unwrap();
            if c % 5 == 0 {
                b.add_weighted_net(&[c, (c + 7) % n, (c + 14) % n, (c + 21) % n], 2)
                    .unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn coarsening_is_deterministic_across_repeated_runs() {
        // Repeated in-process runs exercise fresh map instances; with
        // the old HashMap-based merge/score maps, differing hasher
        // states could reorder f64 accumulation and net emission. The
        // whole ladder must now be reproducible run-to-run.
        use rand::SeedableRng;
        let nl = wide_netlist();
        let run = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let ladder = coarsen_to(&nl, 8, &mut rng);
            let mut fine_cells = nl.num_cells();
            let mut levels = Vec::new();
            for c in ladder {
                let map: Vec<VertexId> = (0..fine_cells as VertexId).map(|v| c.map(v)).collect();
                fine_cells = c.coarse().num_cells();
                levels.push((c.coarse().clone(), map));
            }
            levels
        };
        let first = run();
        assert!(!first.is_empty(), "coarsening made progress");
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }
}
