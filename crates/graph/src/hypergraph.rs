//! Hypergraph netlists: cells connected by multi-pin nets.
//!
//! The paper's motivating application — "VLSI placement and routing
//! problems" — really concerns *netlists*, where a net (hyperedge) may
//! connect more than two cells, and the quantity minimized is the
//! number of nets spanning both sides, not graph edges. The paper (and
//! its cited Goldberg-Burstein technique) works on the graph
//! abstraction; this module provides the faithful substrate so the
//! workspace can also run Fiduccia-Mattheyses in its native hypergraph
//! form (`bisect_core::netlist`) and measure what the clique
//! approximation costs.
//!
//! A [`Netlist`] stores both incidence directions in CSR form: net →
//! pins and cell → nets.

use crate::csr::Offsets;
use crate::{EdgeWeight, Graph, GraphBuilder, GraphError, VertexId, VertexWeight};

/// Identifier of a net; nets of a netlist are `0..num_nets as NetId`.
pub type NetId = u32;

/// An immutable hypergraph netlist.
///
/// # Example
///
/// ```
/// use bisect_graph::hypergraph::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new(4);
/// b.add_net(&[0, 1, 2]).unwrap(); // a 3-pin net
/// b.add_net(&[2, 3]).unwrap();
/// let netlist = b.build();
/// assert_eq!(netlist.num_cells(), 4);
/// assert_eq!(netlist.num_nets(), 2);
/// assert_eq!(netlist.pins(0), &[0, 1, 2]);
/// assert_eq!(netlist.nets_of(2), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    xpins: Offsets,
    pins: Vec<VertexId>,
    xnets: Offsets,
    nets: Vec<NetId>,
    cell_weights: Vec<VertexWeight>,
    net_weights: Vec<EdgeWeight>,
}

impl Netlist {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.xnets.len() - 1
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.xpins.len() - 1
    }

    /// Total number of pins (sum of net sizes).
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Whether *both* incidence-offset arrays use the `u32` narrow form
    /// (see [`Graph::uses_compact_offsets`]); true for every netlist
    /// under 2^32 pins, i.e. all realistic instances.
    pub fn uses_compact_offsets(&self) -> bool {
        self.xpins.is_narrow() && self.xnets.is_narrow()
    }

    /// The cells of net `n`, sorted, without duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn pins(&self, n: NetId) -> &[VertexId] {
        let n = n as usize;
        &self.pins[self.xpins.get(n)..self.xpins.get(n + 1)]
    }

    /// The nets incident to cell `c`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn nets_of(&self, c: VertexId) -> &[NetId] {
        let c = c as usize;
        &self.nets[self.xnets.get(c)..self.xnets.get(c + 1)]
    }

    /// The weight of cell `c` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cell_weight(&self, c: VertexId) -> VertexWeight {
        self.cell_weights[c as usize]
    }

    /// The weight of net `n` (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn net_weight(&self, n: NetId) -> EdgeWeight {
        self.net_weights[n as usize]
    }

    /// Sum of all cell weights.
    pub fn total_cell_weight(&self) -> VertexWeight {
        self.cell_weights.iter().sum()
    }

    /// Iterates over all cell ids.
    pub fn cells(&self) -> std::ops::Range<VertexId> {
        0..self.num_cells() as VertexId
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> std::ops::Range<NetId> {
        0..self.num_nets() as NetId
    }

    /// Average pins per net (0 for zero nets).
    pub fn average_net_size(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }

    /// The *clique expansion*: every net of `k ≥ 2` pins becomes a
    /// clique on its pins, each clique edge carrying the net's weight
    /// (parallel contributions from different nets merge by summing).
    /// This is the standard graph approximation of a netlist — it
    /// over-counts multi-pin nets in the cut, which is what the
    /// hypergraph-native FM avoids.
    // lint: allow(no-panic) — netlist cell weights are positive by
    // construction, and pins are deduped in-range cells with u < v.
    pub fn to_clique_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_cells());
        for (c, &w) in self.cell_weights.iter().enumerate() {
            b.set_vertex_weight(c as VertexId, w)
                .expect("cell weights positive");
        }
        for n in self.net_ids() {
            let pins = self.pins(n);
            let w = self.net_weight(n);
            for (i, &u) in pins.iter().enumerate() {
                for &v in &pins[i + 1..] {
                    b.add_weighted_edge(u, v, w).expect("pins valid, distinct");
                }
            }
        }
        b.build()
    }

    /// Views a graph as a netlist of two-pin nets (the inverse of
    /// [`to_clique_graph`](Netlist::to_clique_graph) for ordinary
    /// graphs).
    // lint: allow(no-panic) — graph vertex weights are positive by
    // construction, and edges have in-range endpoints and positive weight.
    pub fn from_graph(g: &Graph) -> Netlist {
        let mut b = NetlistBuilder::new(g.num_vertices());
        for v in g.vertices() {
            b.set_cell_weight(v, g.vertex_weight(v))
                .expect("weights valid");
        }
        for (u, v, w) in g.edges() {
            b.add_weighted_net(&[u, v], w)
                .expect("edges are valid 2-pin nets");
        }
        b.build()
    }
}

/// The result of contracting matched cell pairs of a netlist: the
/// coarse netlist plus the fine-to-coarse cell map. Produced by
/// [`contract_cells`]; the netlist analogue of
/// [`crate::contraction::Contraction`].
#[derive(Debug, Clone)]
pub struct NetlistContraction {
    coarse: Netlist,
    fine_to_coarse: Vec<VertexId>,
}

impl NetlistContraction {
    /// The coarse (contracted) netlist.
    pub fn coarse(&self) -> &Netlist {
        &self.coarse
    }

    /// The coarse cell that fine cell `c` was merged into.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the fine netlist.
    pub fn map(&self, c: VertexId) -> VertexId {
        self.fine_to_coarse[c as usize]
    }

    /// The full fine-to-coarse cell map, indexed by fine cell id — the
    /// netlist analogue of
    /// [`crate::contraction::Contraction::fine_to_coarse`], consumed by
    /// gain-cache projection across uncoarsening steps.
    pub fn fine_to_coarse(&self) -> &[VertexId] {
        &self.fine_to_coarse
    }

    /// Projects a coarse side assignment to the fine cells.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_side.len()` differs from the coarse cell count.
    pub fn project_sides(&self, coarse_side: &[bool]) -> Vec<bool> {
        assert_eq!(
            coarse_side.len(),
            self.coarse.num_cells(),
            "side assignment length must match coarse cell count"
        );
        self.fine_to_coarse
            .iter()
            .map(|&c| coarse_side[c as usize])
            .collect()
    }
}

/// Contracts matched cell pairs (`pairs` must be vertex-disjoint) in
/// the netlist sense: coarse cell weights are summed, each net's pins
/// are mapped and deduplicated, nets left with fewer than two distinct
/// pins are dropped, and nets that become *identical* pin sets are
/// merged with summed weights — the standard hypergraph coarsening step
/// (the paper's compaction, §V, in its netlist form).
///
/// # Panics
///
/// Panics if a cell appears in two pairs, a pair repeats a cell, or a
/// cell id is out of range.
// lint: allow(no-panic) — sums of positive fine weights stay positive,
// and merged pin sets are in-range coarse cells.
pub fn contract_cells(nl: &Netlist, pairs: &[(VertexId, VertexId)]) -> NetlistContraction {
    let n = nl.num_cells();
    let mut fine_to_coarse = vec![VertexId::MAX; n];
    let mut mate = vec![VertexId::MAX; n];
    for &(a, b) in pairs {
        assert_ne!(a, b, "a cell cannot be matched with itself");
        assert!((a as usize) < n && (b as usize) < n, "pair out of range");
        assert!(
            mate[a as usize] == VertexId::MAX && mate[b as usize] == VertexId::MAX,
            "matching must be vertex-disjoint"
        );
        mate[a as usize] = b;
        mate[b as usize] = a;
    }
    let mut next: VertexId = 0;
    for c in 0..n as VertexId {
        if fine_to_coarse[c as usize] != VertexId::MAX {
            continue;
        }
        fine_to_coarse[c as usize] = next;
        let m = mate[c as usize];
        if m != VertexId::MAX {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let num_coarse = next as usize;

    let mut builder = NetlistBuilder::new(num_coarse);
    let mut weights = vec![0u64; num_coarse];
    for c in 0..n as VertexId {
        weights[fine_to_coarse[c as usize] as usize] += nl.cell_weight(c);
    }
    for (c, &w) in weights.iter().enumerate() {
        builder
            .set_cell_weight(c as VertexId, w)
            .expect("coarse weights are positive sums");
    }
    // Coarse nets, merged by identical pin sets. A BTreeMap keeps the
    // merge order-independent *and* yields nets in sorted pin order,
    // which is exactly the order the old sort-after-HashMap produced
    // (pin sets are unique keys).
    let mut merged: std::collections::BTreeMap<Vec<VertexId>, EdgeWeight> =
        std::collections::BTreeMap::new();
    for net in nl.net_ids() {
        let mut pins: Vec<VertexId> = nl
            .pins(net)
            .iter()
            .map(|&p| fine_to_coarse[p as usize])
            .collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        *merged.entry(pins).or_insert(0) += nl.net_weight(net);
    }
    for (pins, w) in merged {
        builder
            .add_weighted_net(&pins, w)
            .expect("coarse pins valid");
    }
    NetlistContraction {
        coarse: builder.build(),
        fine_to_coarse,
    }
}

/// Reusable scratch for [`contract_cells_into`]: the per-net merge
/// buffers that [`contract_cells`] would otherwise reallocate at every
/// coarsening level. One instance serves a whole ladder — each level
/// clears and refills the buffers, whose capacity stays warm at the
/// finest level's size.
#[derive(Debug, Default)]
pub struct NetlistContractionScratch {
    /// Per-fine-cell matched partner (`VertexId::MAX` = unmatched).
    mate: Vec<VertexId>,
    /// Mapped, per-net sorted and deduped pins of surviving nets,
    /// concatenated.
    pin_buf: Vec<VertexId>,
    /// `(start, end, weight)` spans into `pin_buf`, one per surviving
    /// net.
    spans: Vec<(usize, usize, EdgeWeight)>,
    /// Net permutation used to sort spans into lexicographic pin order.
    order: Vec<u32>,
}

impl NetlistContractionScratch {
    /// Fresh, empty scratch.
    pub fn new() -> NetlistContractionScratch {
        NetlistContractionScratch::default()
    }
}

/// As [`contract_cells`], drawing every intermediate buffer from
/// `scratch` instead of allocating per level: pins are mapped into one
/// shared buffer, nets are sorted by pin-set order through an index
/// permutation, and equal pin sets merge by walking adjacent runs. The
/// output is **identical** to [`contract_cells`] — the merge emits nets
/// in the same lexicographic pin-set order with the same summed weights
/// (tested) — so callers can pick either path without changing results.
///
/// # Panics
///
/// As [`contract_cells`].
pub fn contract_cells_into(
    nl: &Netlist,
    pairs: &[(VertexId, VertexId)],
    scratch: &mut NetlistContractionScratch,
) -> NetlistContraction {
    let n = nl.num_cells();
    let mut fine_to_coarse = vec![VertexId::MAX; n];
    scratch.mate.clear();
    scratch.mate.resize(n, VertexId::MAX);
    let mate = &mut scratch.mate;
    for &(a, b) in pairs {
        assert_ne!(a, b, "a cell cannot be matched with itself");
        assert!((a as usize) < n && (b as usize) < n, "pair out of range");
        assert!(
            mate[a as usize] == VertexId::MAX && mate[b as usize] == VertexId::MAX,
            "matching must be vertex-disjoint"
        );
        mate[a as usize] = b;
        mate[b as usize] = a;
    }
    let mut next: VertexId = 0;
    for c in 0..n as VertexId {
        if fine_to_coarse[c as usize] != VertexId::MAX {
            continue;
        }
        fine_to_coarse[c as usize] = next;
        let m = mate[c as usize];
        if m != VertexId::MAX {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let num_coarse = next as usize;
    let mut cell_weights = vec![0u64; num_coarse];
    for c in 0..n as VertexId {
        cell_weights[fine_to_coarse[c as usize] as usize] += nl.cell_weight(c);
    }

    // Map, sort, and dedup every net's pins into the shared buffer;
    // record spans of nets that keep at least two distinct pins.
    scratch.pin_buf.clear();
    scratch.spans.clear();
    for net in nl.net_ids() {
        let start = scratch.pin_buf.len();
        scratch
            .pin_buf
            .extend(nl.pins(net).iter().map(|&p| fine_to_coarse[p as usize]));
        let slice = &mut scratch.pin_buf[start..];
        slice.sort_unstable();
        let mut keep = start;
        for i in start..scratch.pin_buf.len() {
            if keep == start || scratch.pin_buf[keep - 1] != scratch.pin_buf[i] {
                scratch.pin_buf[keep] = scratch.pin_buf[i];
                keep += 1;
            }
        }
        scratch.pin_buf.truncate(keep);
        if keep - start < 2 {
            scratch.pin_buf.truncate(start);
            continue;
        }
        scratch.spans.push((start, keep, nl.net_weight(net)));
    }
    // Lexicographic pin-set order — the order the BTreeMap merge of
    // [`contract_cells`] emits. Equal sets land adjacent; their summed
    // weight is order-independent, so unstable sorting is safe.
    scratch.order.clear();
    scratch.order.extend(0..scratch.spans.len() as u32);
    let (pin_buf, spans) = (&scratch.pin_buf, &scratch.spans);
    let key = |i: u32| {
        let (s, e, _) = spans[i as usize];
        &pin_buf[s..e]
    };
    scratch.order.sort_unstable_by(|&a, &b| key(a).cmp(key(b)));

    // Merge adjacent equal pin sets and emit the coarse CSR directly.
    let mut xpins: Vec<usize> = Vec::with_capacity(scratch.spans.len() + 1);
    xpins.push(0);
    let mut pins: Vec<VertexId> = Vec::new();
    let mut net_weights: Vec<EdgeWeight> = Vec::new();
    let mut cell_degree = vec![0usize; num_coarse];
    for &i in &scratch.order {
        let set = key(i);
        let w = spans[i as usize].2;
        if net_weights.is_empty() || &pins[xpins[xpins.len() - 2]..] != set {
            pins.extend_from_slice(set);
            xpins.push(pins.len());
            net_weights.push(w);
            for &p in set {
                cell_degree[p as usize] += 1;
            }
        } else {
            let last = net_weights.len() - 1;
            net_weights[last] += w;
        }
    }
    let mut xnets = vec![0usize; num_coarse + 1];
    for c in 0..num_coarse {
        xnets[c + 1] = xnets[c] + cell_degree[c];
    }
    let mut cursor: Vec<usize> = xnets[..num_coarse].to_vec();
    let mut nets = vec![0 as NetId; xnets[num_coarse]];
    for net in 0..net_weights.len() {
        for &p in &pins[xpins[net]..xpins[net + 1]] {
            nets[cursor[p as usize]] = net as NetId;
            cursor[p as usize] += 1;
        }
    }
    NetlistContraction {
        coarse: Netlist {
            xpins: Offsets::from_wide(xpins),
            pins,
            xnets: Offsets::from_wide(xnets),
            nets,
            cell_weights,
            net_weights,
        },
        fine_to_coarse,
    }
}

/// Breadth-first cell visitation order (`new -> old`): cells are
/// numbered in BFS order over the net incidence structure, entering
/// components in increasing order of their smallest cell and expanding
/// each cell's nets (and each net's pins) in increasing id order. The
/// netlist analogue of [`crate::reorder::bfs`] — cells sharing nets get
/// nearby ids, so refinement sweeps stride through the CSR arrays
/// instead of hopping randomly.
pub fn bfs_cell_order(nl: &Netlist) -> Vec<VertexId> {
    let n = nl.num_cells();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n as VertexId {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &net in nl.nets_of(c) {
                for &p in nl.pins(net) {
                    if !seen[p as usize] {
                        seen[p as usize] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
    }
    order
}

/// The relabeled netlist: cell `new` of the result is cell
/// `new_to_old[new]` of `nl`, with nets, pins, and weights carried
/// over (net ids and order are unchanged). Relabeling is an
/// isomorphism, so every bisection of the result maps to a bisection
/// of `nl` with the same net cut.
///
/// # Panics
///
/// Panics if `new_to_old` is not a permutation of `0..nl.num_cells()`.
pub fn permute_cells(nl: &Netlist, new_to_old: &[VertexId]) -> Netlist {
    let n = nl.num_cells();
    assert_eq!(new_to_old.len(), n, "permutation length must match cells");
    let mut old_to_new = vec![VertexId::MAX; n];
    for (new, &old) in new_to_old.iter().enumerate() {
        assert!((old as usize) < n, "cell id out of range");
        assert_eq!(
            old_to_new[old as usize],
            VertexId::MAX,
            "cell id repeats — not a permutation"
        );
        old_to_new[old as usize] = new as VertexId;
    }
    // Net sizes are untouched by relabeling, so xpins carries over;
    // each net's pins are remapped and re-sorted in place.
    let mut xpins: Vec<usize> = Vec::with_capacity(nl.num_nets() + 1);
    xpins.push(0);
    let mut pins: Vec<VertexId> = Vec::with_capacity(nl.num_pins());
    for net in nl.net_ids() {
        let start = pins.len();
        pins.extend(nl.pins(net).iter().map(|&p| old_to_new[p as usize]));
        pins[start..].sort_unstable();
        xpins.push(pins.len());
    }
    let mut xnets = vec![0usize; n + 1];
    for new in 0..n {
        let old = new_to_old[new];
        xnets[new + 1] = xnets[new] + nl.nets_of(old).len();
    }
    let mut cursor: Vec<usize> = xnets[..n].to_vec();
    let mut nets = vec![0 as NetId; xnets[n]];
    for net in nl.net_ids() {
        for &p in &pins[xpins[net as usize]..xpins[net as usize + 1]] {
            nets[cursor[p as usize]] = net;
            cursor[p as usize] += 1;
        }
    }
    let cell_weights = new_to_old.iter().map(|&old| nl.cell_weight(old)).collect();
    let net_weights = nl.net_ids().map(|net| nl.net_weight(net)).collect();
    Netlist {
        xpins: Offsets::from_wide(xpins),
        pins,
        xnets: Offsets::from_wide(xnets),
        nets,
        cell_weights,
        net_weights,
    }
}

/// Forms a random maximal cell matching along nets: visits cells in a
/// random order and matches each unmatched cell to an unmatched cell
/// sharing a net, preferring partners connected through *small* nets
/// (connectivity score `Σ w(net)/(|net|−1)`, hMETIS-style edge
/// coarsening). Returns the matched pairs.
pub fn random_cell_matching<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    random_cell_matching_with_skip(nl, &[], rng)
}

/// As [`random_cell_matching`], but cells flagged in `skip` are never
/// matched — neither visited nor offered as partners. An empty `skip`
/// slice skips nothing; a shorter-than-`num_cells` slice treats missing
/// entries as `false`. Multilevel pipelines use this to keep *fixed*
/// cells (terminal-propagation anchors) as singleton coarse cells so
/// their side constraint survives every coarsening level.
pub fn random_cell_matching_with_skip<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    skip: &[bool],
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    use rand::seq::SliceRandom;
    let n = nl.num_cells();
    let skipped = |c: VertexId| skip.get(c as usize).copied().unwrap_or(false);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(rng);
    let mut matched = vec![false; n];
    let mut pairs = Vec::new();
    // BTreeMap so iteration order — and with it the f64 accumulation
    // and tie-breaking below — never depends on hasher state.
    let mut score: std::collections::BTreeMap<VertexId, f64> = std::collections::BTreeMap::new();
    for &c in &order {
        if matched[c as usize] || skipped(c) {
            continue;
        }
        score.clear();
        for &net in nl.nets_of(c) {
            let pins = nl.pins(net);
            if pins.len() < 2 {
                continue;
            }
            let contribution = nl.net_weight(net) as f64 / (pins.len() - 1) as f64;
            for &p in pins {
                if p != c && !matched[p as usize] && !skipped(p) {
                    *score.entry(p).or_insert(0.0) += contribution;
                }
            }
        }
        let best = score.iter().max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(a.0))
        });
        if let Some((&partner, _)) = best {
            matched[c as usize] = true;
            matched[partner as usize] = true;
            pairs.push((c, partner));
        }
    }
    pairs
}

/// Repeatedly contracts random cell matchings until the netlist has at
/// most `target_cells` cells or a matching makes no progress. Returns
/// the ladder of contractions, finest first — the netlist analogue of
/// [`crate::contraction::coarsen_to`].
pub fn coarsen_to<R: rand::Rng + ?Sized>(
    nl: &Netlist,
    target_cells: usize,
    rng: &mut R,
) -> Vec<NetlistContraction> {
    let mut ladder = Vec::new();
    let mut current = nl.clone();
    while current.num_cells() > target_cells {
        let pairs = random_cell_matching(&current, rng);
        if pairs.is_empty() {
            break;
        }
        let c = contract_cells(&current, &pairs);
        current = c.coarse().clone();
        ladder.push(c);
    }
    ladder
}

/// Incremental construction of a [`Netlist`].
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    num_cells: usize,
    nets: Vec<(Vec<VertexId>, EdgeWeight)>,
    cell_weights: Vec<VertexWeight>,
}

impl NetlistBuilder {
    /// A builder for a netlist on `num_cells` cells with no nets.
    pub fn new(num_cells: usize) -> NetlistBuilder {
        NetlistBuilder {
            num_cells,
            nets: Vec::new(),
            cell_weights: vec![1; num_cells],
        }
    }

    /// Adds a net with weight 1 over the given pins. Duplicate pins are
    /// merged; single-pin and empty nets are accepted (they can never
    /// be cut) to mirror real netlist files.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if a pin is out of range.
    pub fn add_net(&mut self, pins: &[VertexId]) -> Result<NetId, GraphError> {
        self.add_weighted_net(pins, 1)
    }

    /// Adds a net with the given weight.
    ///
    /// # Errors
    ///
    /// As [`add_net`](NetlistBuilder::add_net), plus
    /// [`GraphError::ZeroWeight`] for `weight == 0`.
    pub fn add_weighted_net(
        &mut self,
        pins: &[VertexId],
        weight: EdgeWeight,
    ) -> Result<NetId, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        for &p in pins {
            if p as usize >= self.num_cells {
                return Err(GraphError::VertexOutOfRange {
                    vertex: p as u64,
                    num_vertices: self.num_cells,
                });
            }
        }
        let mut sorted: Vec<VertexId> = pins.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let id = self.nets.len() as NetId;
        self.nets.push((sorted, weight));
        Ok(id)
    }

    /// Sets the weight of cell `c` (default 1).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::ZeroWeight`].
    pub fn set_cell_weight(
        &mut self,
        c: VertexId,
        weight: VertexWeight,
    ) -> Result<&mut NetlistBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if c as usize >= self.num_cells {
            return Err(GraphError::VertexOutOfRange {
                vertex: c as u64,
                num_vertices: self.num_cells,
            });
        }
        self.cell_weights[c as usize] = weight;
        Ok(self)
    }

    /// Finalizes both CSR directions.
    pub fn build(self) -> Netlist {
        let num_nets = self.nets.len();
        let mut xpins = Vec::with_capacity(num_nets + 1);
        xpins.push(0usize);
        let mut pins = Vec::new();
        let mut net_weights = Vec::with_capacity(num_nets);
        let mut cell_degree = vec![0usize; self.num_cells];
        for (net_pins, w) in &self.nets {
            pins.extend_from_slice(net_pins);
            xpins.push(pins.len());
            net_weights.push(*w);
            for &p in net_pins {
                cell_degree[p as usize] += 1;
            }
        }
        let mut xnets = vec![0usize; self.num_cells + 1];
        for c in 0..self.num_cells {
            xnets[c + 1] = xnets[c] + cell_degree[c];
        }
        let mut cursor = xnets.clone();
        let mut nets = vec![0 as NetId; xnets[self.num_cells]];
        for (n, (net_pins, _)) in self.nets.iter().enumerate() {
            for &p in net_pins {
                nets[cursor[p as usize]] = n as NetId;
                cursor[p as usize] += 1;
            }
        }
        // Nets were appended in increasing id order per cell, so the
        // per-cell lists are already sorted.
        Netlist {
            xpins: Offsets::from_wide(xpins),
            pins,
            xnets: Offsets::from_wide(xnets),
            nets,
            cell_weights: self.cell_weights,
            net_weights,
        }
    }

    /// Builds a unit-cell-weight netlist without materializing the full
    /// pin list: `emit` is invoked twice with a [`PinStream`] sink and
    /// must produce the *identical* net sequence both times (re-run a
    /// cloned RNG, or re-scan the same staged arrays). The first pass
    /// counts per-net pin slots and per-cell net degrees, the second
    /// writes both CSR directions straight into their final arrays — a
    /// counting sort, the netlist analogue of [`GraphBuilder::stream`].
    ///
    /// Peak memory is the final CSR arrays plus `O(cells + nets)`
    /// counters; the edge-list path holds every net's pin `Vec`
    /// alongside the CSR arrays. Each net's pins are sorted and deduped
    /// in a small per-net scratch buffer exactly as
    /// [`add_net`](NetlistBuilder::add_net) does, so the result is
    /// byte-identical to adding the same nets to a [`NetlistBuilder`]
    /// and calling [`build`](NetlistBuilder::build) (property-tested).
    ///
    /// # Errors
    ///
    /// Propagates per-net errors from the sink
    /// ([`GraphError::VertexOutOfRange`], [`GraphError::ZeroWeight`])
    /// and returns [`GraphError::StreamMismatch`] if the two passes
    /// disagree.
    pub fn stream<F>(num_cells: usize, mut emit: F) -> Result<Netlist, GraphError>
    where
        F: FnMut(&mut PinStream<'_>) -> Result<(), GraphError>,
    {
        let mut cell_degree = vec![0usize; num_cells];
        let mut net_sizes: Vec<u32> = Vec::new();
        let counted = {
            let mut sink = PinStream {
                num_cells,
                records: 0,
                scratch: Vec::new(),
                mode: PinStreamMode::Count {
                    cell_degree: &mut cell_degree,
                    net_sizes: &mut net_sizes,
                },
            };
            emit(&mut sink)?;
            sink.records
        };
        let num_nets = net_sizes.len();
        let mut xpins = vec![0usize; num_nets + 1];
        for n in 0..num_nets {
            xpins[n + 1] = xpins[n] + net_sizes[n] as usize;
        }
        let mut xnets = vec![0usize; num_cells + 1];
        for c in 0..num_cells {
            xnets[c + 1] = xnets[c] + cell_degree[c];
        }
        let mut pins = vec![0 as VertexId; xpins[num_nets]];
        let mut nets = vec![0 as NetId; xnets[num_cells]];
        let mut net_weights = vec![0 as EdgeWeight; num_nets];
        let mut cell_cursor: Vec<usize> = xnets[..num_cells].to_vec();
        let emitted = {
            let mut sink = PinStream {
                num_cells,
                records: 0,
                scratch: Vec::new(),
                mode: PinStreamMode::Fill {
                    xpins: &xpins,
                    xnets: &xnets,
                    cell_cursor: &mut cell_cursor,
                    pins: &mut pins,
                    nets: &mut nets,
                    net_weights: &mut net_weights,
                },
            };
            emit(&mut sink)?;
            sink.records
        };
        if emitted != counted
            || cell_cursor
                .iter()
                .zip(&xnets[1..])
                .any(|(&c, &end)| c != end)
        {
            return Err(GraphError::StreamMismatch { counted, emitted });
        }
        // Both pass-2 write orders match the builder's: pins in net
        // order (each net sorted and deduped by the sink), per-cell net
        // lists in increasing net id because nets arrive in id order.
        Ok(Netlist {
            xpins: Offsets::from_wide(xpins),
            pins,
            xnets: Offsets::from_wide(xnets),
            nets,
            cell_weights: vec![1; num_cells],
            net_weights,
        })
    }
}

/// The net sink handed to the closure of [`NetlistBuilder::stream`].
/// Validates each net exactly as [`NetlistBuilder::add_weighted_net`]
/// does, so both passes fail identically on bad input.
#[derive(Debug)]
pub struct PinStream<'a> {
    num_cells: usize,
    records: usize,
    /// Per-net sort/dedup buffer, reused across nets — the only pin
    /// storage besides the final CSR arrays.
    scratch: Vec<VertexId>,
    mode: PinStreamMode<'a>,
}

#[derive(Debug)]
enum PinStreamMode<'a> {
    Count {
        cell_degree: &'a mut [usize],
        net_sizes: &'a mut Vec<u32>,
    },
    Fill {
        xpins: &'a [usize],
        xnets: &'a [usize],
        cell_cursor: &'a mut [usize],
        pins: &'a mut [VertexId],
        nets: &'a mut [NetId],
        net_weights: &'a mut [EdgeWeight],
    },
}

impl PinStream<'_> {
    /// Emits a net with weight 1 over the given pins. As in
    /// [`NetlistBuilder::add_net`], duplicate pins merge and degenerate
    /// (< 2 pin) nets are accepted.
    ///
    /// # Errors
    ///
    /// As [`PinStream::weighted_net`].
    pub fn net(&mut self, pins: &[VertexId]) -> Result<(), GraphError> {
        self.weighted_net(pins, 1)
    }

    /// Emits a net with the given weight.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::ZeroWeight`] as
    /// for [`NetlistBuilder::add_weighted_net`];
    /// [`GraphError::StreamMismatch`] if the filling pass diverges from
    /// the counting pass (more nets, or different pins for some net or
    /// cell).
    pub fn weighted_net(
        &mut self,
        pins: &[VertexId],
        weight: EdgeWeight,
    ) -> Result<(), GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        for &p in pins {
            if p as usize >= self.num_cells {
                return Err(GraphError::VertexOutOfRange {
                    vertex: p as u64,
                    num_vertices: self.num_cells,
                });
            }
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(pins);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let net = self.records;
        self.records += 1;
        match &mut self.mode {
            PinStreamMode::Count {
                cell_degree,
                net_sizes,
            } => {
                net_sizes.push(self.scratch.len() as u32);
                for &p in &self.scratch {
                    cell_degree[p as usize] += 1;
                }
            }
            PinStreamMode::Fill {
                xpins,
                xnets,
                cell_cursor,
                pins,
                nets,
                net_weights,
            } => {
                if net + 1 >= xpins.len() {
                    return Err(GraphError::StreamMismatch {
                        counted: xpins.len() - 1,
                        emitted: net + 1,
                    });
                }
                let (lo, hi) = (xpins[net], xpins[net + 1]);
                if self.scratch.len() != hi - lo {
                    return Err(GraphError::StreamMismatch {
                        counted: hi - lo,
                        emitted: self.scratch.len(),
                    });
                }
                pins[lo..hi].copy_from_slice(&self.scratch);
                net_weights[net] = weight;
                for &p in &self.scratch {
                    let slot = cell_cursor[p as usize];
                    if slot >= xnets[p as usize + 1] {
                        return Err(GraphError::StreamMismatch {
                            counted: xnets[p as usize + 1] - xnets[p as usize],
                            emitted: slot + 1 - xnets[p as usize],
                        });
                    }
                    nets[slot] = net as NetId;
                    cell_cursor[p as usize] = slot + 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(5);
        b.add_net(&[0, 1, 2]).unwrap();
        b.add_net(&[2, 3]).unwrap();
        b.add_weighted_net(&[0, 3, 4], 3).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let nl = sample();
        assert_eq!(nl.num_cells(), 5);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 8);
        assert!((nl.average_net_size() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn incidence_is_consistent_both_ways() {
        let nl = sample();
        for n in nl.net_ids() {
            for &c in nl.pins(n) {
                assert!(nl.nets_of(c).contains(&n), "cell {c} missing net {n}");
            }
        }
        for c in nl.cells() {
            for &n in nl.nets_of(c) {
                assert!(nl.pins(n).contains(&c), "net {n} missing cell {c}");
            }
        }
    }

    #[test]
    fn pins_sorted_and_deduped() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[3, 1, 3, 0, 1]).unwrap();
        let nl = b.build();
        assert_eq!(nl.pins(0), &[0, 1, 3]);
    }

    #[test]
    fn degenerate_nets_accepted() {
        let mut b = NetlistBuilder::new(2);
        b.add_net(&[]).unwrap();
        b.add_net(&[1]).unwrap();
        let nl = b.build();
        assert_eq!(nl.num_nets(), 2);
        assert!(nl.pins(0).is_empty());
        assert_eq!(nl.pins(1), &[1]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut b = NetlistBuilder::new(2);
        assert!(b.add_net(&[0, 5]).is_err());
        assert!(b.add_weighted_net(&[0, 1], 0).is_err());
        assert!(b.set_cell_weight(7, 1).is_err());
        assert!(b.set_cell_weight(0, 0).is_err());
    }

    #[test]
    fn weights() {
        let nl = sample();
        assert_eq!(nl.net_weight(2), 3);
        assert_eq!(nl.cell_weight(0), 1);
        assert_eq!(nl.total_cell_weight(), 5);
    }

    #[test]
    fn clique_expansion() {
        let nl = sample();
        let g = nl.to_clique_graph();
        assert_eq!(g.num_vertices(), 5);
        // Net 0 (0,1,2): edges 01, 02, 12. Net 1 (2,3): 23.
        // Net 2 (0,3,4) weight 3: 03, 04, 34 each weight 3.
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(2, 3), Some(1));
        assert_eq!(g.edge_weight(0, 4), Some(3));
        assert_eq!(g.num_edges(), 7);
    }

    #[test]
    fn from_graph_roundtrip_via_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let nl = Netlist::from_graph(&g);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.average_net_size(), 2.0);
        // Two-pin nets expand back to the same graph.
        assert_eq!(nl.to_clique_graph(), g);
    }

    #[test]
    fn empty_netlist() {
        let nl = NetlistBuilder::new(0).build();
        assert_eq!(nl.num_cells(), 0);
        assert_eq!(nl.num_nets(), 0);
        assert_eq!(nl.average_net_size(), 0.0);
    }

    #[test]
    fn contract_merges_cells_and_drops_internal_nets() {
        // Net {0,1} becomes single-pin after contracting (0,1): dropped.
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[0, 1]).unwrap();
        b.add_net(&[1, 2, 3]).unwrap();
        let nl = b.build();
        let c = contract_cells(&nl, &[(0, 1)]);
        assert_eq!(c.coarse().num_cells(), 3);
        assert_eq!(c.coarse().num_nets(), 1);
        assert_eq!(c.map(0), c.map(1));
        assert_eq!(c.coarse().cell_weight(c.map(0)), 2);
    }

    #[test]
    fn contract_merges_identical_nets() {
        // Nets {0,2} and {1,2} become identical after contracting (0,1).
        let mut b = NetlistBuilder::new(3);
        b.add_net(&[0, 2]).unwrap();
        b.add_net(&[1, 2]).unwrap();
        let nl = b.build();
        let c = contract_cells(&nl, &[(0, 1)]);
        assert_eq!(c.coarse().num_nets(), 1);
        assert_eq!(c.coarse().net_weight(0), 2);
    }

    #[test]
    fn contract_projection_shape() {
        let nl = sample();
        let c = contract_cells(&nl, &[(0, 1), (3, 4)]);
        let fine = c.project_sides(&[true, false, true]);
        assert_eq!(fine.len(), 5);
        assert_eq!(fine[0], fine[1]);
        assert_eq!(fine[3], fine[4]);
    }

    #[test]
    #[should_panic(expected = "vertex-disjoint")]
    fn contract_rejects_overlapping_pairs() {
        let nl = sample();
        let _ = contract_cells(&nl, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn random_cell_matching_is_valid() {
        use rand::SeedableRng;
        let nl = sample();
        for seed in 0..10 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = random_cell_matching(&nl, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in &pairs {
                assert_ne!(a, b);
                assert!(seen.insert(a), "cell {a} matched twice");
                assert!(seen.insert(b), "cell {b} matched twice");
                // Partners must share a net.
                assert!(
                    nl.nets_of(a).iter().any(|&n| nl.pins(n).contains(&b)),
                    "pair ({a},{b}) shares no net"
                );
            }
        }
    }

    #[test]
    fn random_cell_matching_deterministic_given_seed() {
        use rand::SeedableRng;
        let nl = sample();
        let a = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn skip_matching_never_touches_skipped_cells() {
        use rand::SeedableRng;
        let nl = wide_netlist();
        let mut skip = vec![false; nl.num_cells()];
        for c in [0usize, 7, 13, 30, 59] {
            skip[c] = true;
        }
        for seed in 0..8 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = random_cell_matching_with_skip(&nl, &skip, &mut rng);
            assert!(!pairs.is_empty());
            for &(a, b) in &pairs {
                assert!(!skip[a as usize], "skipped cell {a} was matched");
                assert!(!skip[b as usize], "skipped cell {b} was matched");
            }
        }
    }

    #[test]
    fn empty_skip_matches_plain_matching() {
        use rand::SeedableRng;
        let nl = wide_netlist();
        let a = random_cell_matching(&nl, &mut rand::rngs::StdRng::seed_from_u64(3));
        let b = random_cell_matching_with_skip(&nl, &[], &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn fine_to_coarse_agrees_with_map() {
        let nl = sample();
        let c = contract_cells(&nl, &[(0, 1), (3, 4)]);
        let full = c.fine_to_coarse();
        assert_eq!(full.len(), nl.num_cells());
        for cell in nl.cells() {
            assert_eq!(full[cell as usize], c.map(cell));
        }
    }

    #[test]
    fn matching_on_netless_cells_is_empty() {
        use rand::SeedableRng;
        let nl = NetlistBuilder::new(5).build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(random_cell_matching(&nl, &mut rng).is_empty());
    }

    #[test]
    fn contraction_preserves_total_cell_weight() {
        use rand::SeedableRng;
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pairs = random_cell_matching(&nl, &mut rng);
        let c = contract_cells(&nl, &pairs);
        assert_eq!(c.coarse().total_cell_weight(), nl.total_cell_weight());
    }

    /// A netlist big enough that net merging and score tie-breaking
    /// actually occur during coarsening.
    fn wide_netlist() -> Netlist {
        let n: u32 = 60;
        let mut b = NetlistBuilder::new(n as usize);
        for c in 0..n {
            // Local 3-pin nets (rings) plus long weighted nets, so
            // contraction produces duplicate pin sets to merge.
            b.add_net(&[c, (c + 1) % n, (c + 2) % n]).unwrap();
            if c % 5 == 0 {
                b.add_weighted_net(&[c, (c + 7) % n, (c + 14) % n, (c + 21) % n], 2)
                    .unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn stream_matches_builder_build() {
        let nets: &[(&[VertexId], EdgeWeight)] = &[
            (&[0, 1, 2], 1),
            (&[2, 3], 1),
            (&[0, 3, 4], 3),
            (&[4, 1, 4, 0], 2), // duplicate pin merges
            (&[2], 1),          // degenerate single-pin net
            (&[], 1),           // degenerate empty net
        ];
        let mut b = NetlistBuilder::new(5);
        for &(pins, w) in nets {
            b.add_weighted_net(pins, w).unwrap();
        }
        let via_builder = b.build();
        let via_stream = NetlistBuilder::stream(5, |sink| {
            for &(pins, w) in nets {
                sink.weighted_net(pins, w)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(via_builder, via_stream);
    }

    #[test]
    fn stream_empty_and_degenerate() {
        let nl = NetlistBuilder::stream(3, |_| Ok(())).unwrap();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_nets(), 0);
        assert!(nl.uses_compact_offsets());
    }

    #[test]
    fn stream_rejects_bad_nets() {
        assert!(matches!(
            NetlistBuilder::stream(3, |sink| sink.net(&[0, 5])),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert_eq!(
            NetlistBuilder::stream(3, |sink| sink.weighted_net(&[0, 1], 0)),
            Err(GraphError::ZeroWeight)
        );
    }

    #[test]
    fn stream_detects_mismatched_passes() {
        // Extra net in pass 2.
        let mut pass = 0;
        let err = NetlistBuilder::stream(4, |sink| {
            pass += 1;
            sink.net(&[0, 1])?;
            if pass > 1 {
                sink.net(&[2, 3])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::StreamMismatch { .. }));
        // Same net count and sizes but different pins in pass 2.
        let mut pass = 0;
        let err = NetlistBuilder::stream(4, |sink| {
            pass += 1;
            sink.net(if pass == 1 { &[0, 1] } else { &[0, 2] })?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::StreamMismatch { .. }));
        // Fewer nets in pass 2.
        let mut pass = 0;
        let err = NetlistBuilder::stream(4, |sink| {
            pass += 1;
            if pass == 1 {
                sink.net(&[0, 1])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::StreamMismatch { .. }));
    }

    #[test]
    fn builder_and_stream_netlists_use_compact_offsets() {
        assert!(sample().uses_compact_offsets());
        assert!(wide_netlist().uses_compact_offsets());
    }

    #[test]
    fn scratch_contraction_matches_allocating_path() {
        use rand::SeedableRng;
        let mut scratch = NetlistContractionScratch::new();
        for (nl, seeds) in [(sample(), 0..6u64), (wide_netlist(), 0..6u64)] {
            for seed in seeds {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let pairs = random_cell_matching(&nl, &mut rng);
                let a = contract_cells(&nl, &pairs);
                let b = contract_cells_into(&nl, &pairs, &mut scratch);
                assert_eq!(a.coarse(), b.coarse(), "seed {seed}");
                assert_eq!(a.fine_to_coarse(), b.fine_to_coarse(), "seed {seed}");
            }
        }
    }

    #[test]
    fn scratch_contraction_survives_a_ladder() {
        // One scratch reused across every level of a coarsening ladder
        // must keep matching the allocating path.
        use rand::SeedableRng;
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(9);
        let mut scratch = NetlistContractionScratch::new();
        let mut cur_a = wide_netlist();
        let mut cur_b = wide_netlist();
        for _ in 0..4 {
            let pairs_a = random_cell_matching(&cur_a, &mut rng_a);
            let pairs_b = random_cell_matching(&cur_b, &mut rng_b);
            assert_eq!(pairs_a, pairs_b);
            if pairs_a.is_empty() {
                break;
            }
            cur_a = contract_cells(&cur_a, &pairs_a).coarse().clone();
            cur_b = contract_cells_into(&cur_b, &pairs_b, &mut scratch)
                .coarse()
                .clone();
            assert_eq!(cur_a, cur_b);
        }
    }

    #[test]
    fn bfs_cell_order_is_a_permutation_and_clusters_components() {
        let nl = wide_netlist();
        let order = bfs_cell_order(&nl);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..nl.num_cells() as VertexId).collect::<Vec<_>>());
        // A netless cell forms its own component and still appears.
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[1, 3]).unwrap();
        let nl = b.build();
        let order = bfs_cell_order(&nl);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        // Cell 1 pulls in its net-mate 3 before isolated cell 2.
        assert_eq!(&order[1..], &[1, 3, 2]);
    }

    #[test]
    fn permute_cells_preserves_structure_and_cut() {
        let nl = sample();
        let order: Vec<VertexId> = vec![4, 2, 0, 3, 1];
        let permuted = permute_cells(&nl, &order);
        assert_eq!(permuted.num_cells(), nl.num_cells());
        assert_eq!(permuted.num_nets(), nl.num_nets());
        assert_eq!(permuted.num_pins(), nl.num_pins());
        for (new, &old) in order.iter().enumerate() {
            assert_eq!(permuted.cell_weight(new as VertexId), nl.cell_weight(old));
            assert_eq!(
                permuted.nets_of(new as VertexId).len(),
                nl.nets_of(old).len()
            );
        }
        // Net cut of any side assignment is isomorphism-invariant.
        let old_sides = [true, false, true, false, true];
        let new_sides: Vec<bool> = order.iter().map(|&old| old_sides[old as usize]).collect();
        let cut = |nl: &Netlist, sides: &[bool]| -> u64 {
            nl.net_ids()
                .filter(|&n| {
                    let pins = nl.pins(n);
                    pins.iter().any(|&p| sides[p as usize])
                        && pins.iter().any(|&p| !sides[p as usize])
                })
                .map(|n| nl.net_weight(n))
                .sum()
        };
        assert_eq!(cut(&nl, &old_sides), cut(&permuted, &new_sides));
        // Pins stay sorted and per-cell net lists stay sorted.
        for n in permuted.net_ids() {
            assert!(permuted.pins(n).windows(2).all(|w| w[0] < w[1]));
        }
        for c in permuted.cells() {
            assert!(permuted.nets_of(c).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bfs_permute_roundtrip_keeps_identity_cut() {
        let nl = wide_netlist();
        let order = bfs_cell_order(&nl);
        let permuted = permute_cells(&nl, &order);
        assert_eq!(permuted.total_cell_weight(), nl.total_cell_weight());
        assert_eq!(permuted.num_pins(), nl.num_pins());
    }

    #[test]
    fn coarsening_is_deterministic_across_repeated_runs() {
        // Repeated in-process runs exercise fresh map instances; with
        // the old HashMap-based merge/score maps, differing hasher
        // states could reorder f64 accumulation and net emission. The
        // whole ladder must now be reproducible run-to-run.
        use rand::SeedableRng;
        let nl = wide_netlist();
        let run = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let ladder = coarsen_to(&nl, 8, &mut rng);
            let mut fine_cells = nl.num_cells();
            let mut levels = Vec::new();
            for c in ladder {
                let map: Vec<VertexId> = (0..fine_cells as VertexId).map(|v| c.map(v)).collect();
                fine_cells = c.coarse().num_cells();
                levels.push((c.coarse().clone(), map));
            }
            levels
        };
        let first = run();
        assert!(!first.is_empty(), "coarsening made progress");
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }
}
