//! Matchings: sets of vertex-disjoint edges.
//!
//! The compaction heuristic of the paper (§V) starts by forming a
//! *random maximal matching* — visit vertices in random order and match
//! each unmatched vertex to a random unmatched neighbor. The paper calls
//! this a "maximum random matching"; it is maximal (no edge can be
//! added), not maximum-cardinality, which is what the randomized greedy
//! process produces.
//!
//! [`heavy_edge`] (match along the heaviest incident edge) is provided as
//! the later multilevel-partitioning refinement of the same idea, used by
//! the `ablate-matching` benchmark.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, VertexId};

const UNMATCHED: VertexId = VertexId::MAX;

/// A matching in a graph: a set of edges no two of which share an
/// endpoint.
///
/// # Example
///
/// ```
/// use bisect_graph::{Graph, matching};
/// use rand::SeedableRng;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let m = matching::random_maximal(&g, &mut rng);
/// assert!(m.is_maximal(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<VertexId>,
    pairs: Vec<(VertexId, VertexId)>,
}

impl Matching {
    /// The empty matching on a graph with `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Matching {
        Matching {
            mate: vec![UNMATCHED; num_vertices],
            pairs: Vec::new(),
        }
    }

    /// Builds a matching from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics if a vertex appears in two pairs, in a pair with itself,
    /// or is out of range.
    pub fn from_pairs(num_vertices: usize, pairs: &[(VertexId, VertexId)]) -> Matching {
        let mut m = Matching::empty(num_vertices);
        for &(u, v) in pairs {
            m.add(u, v);
        }
        m
    }

    fn add(&mut self, u: VertexId, v: VertexId) {
        assert_ne!(u, v, "a vertex cannot be matched with itself");
        assert_eq!(
            self.mate[u as usize], UNMATCHED,
            "vertex {u} already matched"
        );
        assert_eq!(
            self.mate[v as usize], UNMATCHED,
            "vertex {v} already matched"
        );
        self.mate[u as usize] = v;
        self.mate[v as usize] = u;
        self.pairs.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no vertex is matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The partner of `v`, if matched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        let m = self.mate[v as usize];
        (m != UNMATCHED).then_some(m)
    }

    /// Whether `v` is covered by the matching.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.mate[v as usize] != UNMATCHED
    }

    /// The matched pairs, each as `(u, v)` with `u < v`.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.pairs
    }

    /// Whether every edge of `g` has at least one matched endpoint,
    /// i.e. no edge can be added to the matching.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        g.edges()
            .all(|(u, v, _)| self.is_matched(u) || self.is_matched(v))
    }

    /// Whether every matched pair is an edge of `g`.
    pub fn respects_graph(&self, g: &Graph) -> bool {
        self.pairs.iter().all(|&(u, v)| g.has_edge(u, v))
    }
}

/// Forms a random maximal matching: visits vertices in a uniformly random
/// order and matches each still-unmatched vertex to a uniformly random
/// unmatched neighbor (if any). This is the matching used by the paper's
/// compaction heuristic.
///
/// The result is maximal but generally not maximum; by a classical
/// argument it covers at least half the vertices a maximum matching
/// covers.
pub fn random_maximal<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Matching {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(rng);
    let mut m = Matching::empty(n);
    let mut candidates: Vec<VertexId> = Vec::new();
    for &v in &order {
        if m.is_matched(v) {
            continue;
        }
        candidates.clear();
        candidates.extend(g.neighbors(v).iter().copied().filter(|&u| !m.is_matched(u)));
        if let Some(&u) = candidates.as_slice().choose(rng) {
            m.add(v, u);
        }
    }
    m
}

/// Forms a maximal matching preferring heavy edges: visits vertices in a
/// random order and matches each unmatched vertex to the unmatched
/// neighbor reachable over the heaviest edge (ties broken by the random
/// adjacency position). On unit-weight graphs this degenerates to a
/// random maximal matching with a different tie-breaking distribution.
pub fn heavy_edge<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Matching {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(rng);
    let mut m = Matching::empty(n);
    for &v in &order {
        if m.is_matched(v) {
            continue;
        }
        let mut best: Option<(VertexId, u64, u64)> = None;
        for (u, w) in g.neighbors_weighted(v) {
            if m.is_matched(u) {
                continue;
            }
            let tiebreak = rng.gen::<u64>();
            match best {
                Some((_, bw, bt)) if (w, tiebreak) <= (bw, bt) => {}
                _ => best = Some((u, w, tiebreak)),
            }
        }
        if let Some((u, _, _)) = best {
            m.add(v, u);
        }
    }
    m
}

/// Forms a maximal matching by scanning the edges in a uniformly random
/// order and keeping each edge whose endpoints are both still free.
pub fn random_edge_order<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Matching {
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    edges.shuffle(rng);
    let mut m = Matching::empty(g.num_vertices());
    for (u, v) in edges {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add(u, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.mate(0), None);
        assert!(!m.is_matched(2));
    }

    #[test]
    fn from_pairs_symmetry() {
        let m = Matching::from_pairs(4, &[(2, 0), (1, 3)]);
        assert_eq!(m.mate(0), Some(2));
        assert_eq!(m.mate(2), Some(0));
        assert_eq!(m.pairs(), &[(0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "already matched")]
    fn from_pairs_rejects_overlap() {
        Matching::from_pairs(3, &[(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "matched with itself")]
    fn from_pairs_rejects_self_pair() {
        Matching::from_pairs(3, &[(1, 1)]);
    }

    #[test]
    fn random_maximal_is_maximal_and_valid() {
        for seed in 0..20 {
            let g = cycle(17);
            let m = random_maximal(&g, &mut rng(seed));
            assert!(m.is_maximal(&g), "seed {seed}");
            assert!(m.respects_graph(&g), "seed {seed}");
        }
    }

    #[test]
    fn random_maximal_on_edgeless_graph() {
        let g = Graph::empty(5);
        let m = random_maximal(&g, &mut rng(1));
        assert!(m.is_empty());
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn perfect_matching_on_disjoint_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let m = random_maximal(&g, &mut rng(3));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn heavy_edge_prefers_heavy() {
        // Star with center 0; edge (0,3) has weight 10, others weight 1.
        let mut b = crate::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_weighted_edge(0, 3, 10).unwrap();
        let g = b.build();
        for seed in 0..10 {
            let m = heavy_edge(&g, &mut rng(seed));
            // Whoever is visited first among {0,1,2,3}, vertex 0 ends up
            // matched; if 0 is visited first it must pick 3.
            assert!(m.is_maximal(&g));
            if m.mate(0) != Some(3) {
                // 1 or 2 was visited before 0 and grabbed it.
                assert!(m.mate(0) == Some(1) || m.mate(0) == Some(2));
            }
        }
    }

    #[test]
    fn random_edge_order_is_maximal() {
        for seed in 0..10 {
            let g = cycle(12);
            let m = random_edge_order(&g, &mut rng(seed));
            assert!(m.is_maximal(&g));
            assert!(m.respects_graph(&g));
        }
    }

    #[test]
    fn matching_never_exceeds_half_vertices() {
        let g = cycle(9);
        for seed in 0..10 {
            let m = random_maximal(&g, &mut rng(seed));
            assert!(m.len() <= g.num_vertices() / 2);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cycle(30);
        let a = random_maximal(&g, &mut rng(42));
        let b = random_maximal(&g, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = cycle(30);
        let a = random_maximal(&g, &mut rng(1));
        let b = random_maximal(&g, &mut rng(2));
        assert_ne!(a, b);
    }
}
