//! Breadth-first and depth-first traversal, connected components, and
//! bipartiteness.
//!
//! The DFS order is also the basis of the simple depth-first bisection
//! baseline the paper mentions for degree-2 graphs ("one could just use
//! a depth first search algorithm to obtain a better approximation").

use crate::{Graph, VertexId};

/// Vertices in breadth-first order from `start`, restricted to the
/// component of `start`.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// BFS distance (edge count, ignoring weights) from `start` to every
/// vertex; `None` for unreachable vertices.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(g: &Graph, start: VertexId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        // lint: allow(no-panic) — a vertex is queued only after its distance is set
        let d = dist[v as usize].expect("queued vertices have distances");
        for &u in g.neighbors(v) {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Vertices in iterative depth-first preorder, visiting every component
/// (components are entered in increasing order of their smallest vertex;
/// within a vertex, neighbors are explored in increasing id order).
pub fn dfs_order(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<VertexId> = Vec::new();
    for root in 0..n as VertexId {
        if seen[root as usize] {
            continue;
        }
        stack.push(root);
        while let Some(v) = stack.pop() {
            if seen[v as usize] {
                continue;
            }
            seen[v as usize] = true;
            order.push(v);
            // Push in reverse so the smallest neighbor is popped first.
            for &u in g.neighbors(v).iter().rev() {
                if !seen[u as usize] {
                    stack.push(u);
                }
            }
        }
    }
    order
}

/// For each vertex, the dense id (`0..count`) of its connected
/// component, together with the number of components. Component ids are
/// assigned in order of each component's smallest vertex.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut uf = crate::union_find::UnionFind::new(g.num_vertices());
    for (u, v, _) in g.edges() {
        uf.union(u, v);
    }
    let labels = uf.dense_labels();
    let count = uf.num_sets();
    (labels, count)
}

/// Whether the graph is connected. The empty graph and one-vertex graph
/// are considered connected.
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() <= 1 || connected_components(g).1 == 1
}

/// If the graph is bipartite, a two-coloring (`false`/`true` classes);
/// otherwise `None`. Isolated vertices are colored `false`.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let n = g.num_vertices();
    let mut color: Vec<Option<bool>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n as VertexId {
        if color[root as usize].is_some() {
            continue;
        }
        color[root as usize] = Some(false);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            // lint: allow(no-panic) — a vertex is queued only after it is colored
            let cv = color[v as usize].expect("queued vertices are colored");
            for &u in g.neighbors(v) {
                match color[u as usize] {
                    None => {
                        color[u as usize] = Some(!cv);
                        queue.push_back(u);
                    }
                    Some(cu) if cu == cv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.unwrap_or(false)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (i as VertexId, (i + 1) as VertexId))
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_order_path() {
        let g = path(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn bfs_order_restricted_to_component() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0, 1]);
        assert_eq!(bfs_order(&g, 2), vec![2]);
    }

    #[test]
    fn bfs_distances_path() {
        let g = path(4);
        assert_eq!(
            bfs_distances(&g, 0),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn bfs_distances_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(bfs_distances(&g, 0)[2], None);
    }

    #[test]
    fn dfs_order_visits_all_vertices_once() {
        let g = cycle(7);
        let order = dfs_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn dfs_order_deterministic_preorder() {
        // Star with center 0 and leaves 1..4: preorder is 0 then leaves
        // in increasing order.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(dfs_order(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_covers_multiple_components() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]).unwrap();
        assert_eq!(dfs_order(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_of_two_cycles() {
        // Two 3-cycles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&cycle(5)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(!is_connected(
            &Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap()
        ));
    }

    #[test]
    fn even_cycle_bipartite_odd_not() {
        assert!(bipartition(&cycle(6)).is_some());
        assert!(bipartition(&cycle(5)).is_none());
    }

    #[test]
    fn bipartition_is_proper() {
        let g = path(8);
        let coloring = bipartition(&g).unwrap();
        for (u, v, _) in g.edges() {
            assert_ne!(coloring[u as usize], coloring[v as usize]);
        }
    }

    #[test]
    fn bipartition_handles_isolated_vertices() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let coloring = bipartition(&g).unwrap();
        assert!(!coloring[2]);
    }
}
