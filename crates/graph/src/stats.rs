//! Degree statistics.
//!
//! The paper's observations are parameterized by *average degree* (its
//! compaction heuristic is recommended for average degree ≤ 4), so the
//! harness reports these statistics alongside every experiment.

use crate::Graph;

/// Summary statistics of a graph's (unweighted) degree sequence.
///
/// # Example
///
/// ```
/// use bisect_graph::{Graph, stats::DegreeStats};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let s = DegreeStats::of(&g);
/// assert_eq!(s.min, 1);
/// assert_eq!(s.max, 2);
/// assert_eq!(s.average, 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree (0 for the empty graph).
    pub min: usize,
    /// Largest degree (0 for the empty graph).
    pub max: usize,
    /// Mean degree, `2|E|/|V|` counting multiplicities.
    pub average: f64,
    /// `histogram[d]` = number of vertices of degree `d`.
    pub histogram: Vec<usize>,
}

impl DegreeStats {
    /// Computes the statistics of `g`.
    pub fn of(g: &Graph) -> DegreeStats {
        if g.num_vertices() == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                average: 0.0,
                histogram: vec![],
            };
        }
        let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let min = degrees.iter().copied().min().unwrap_or(0);
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mut histogram = vec![0usize; max + 1];
        for &d in &degrees {
            histogram[d] += 1;
        }
        DegreeStats {
            min,
            max,
            average: g.average_degree(),
            histogram,
        }
    }

    /// Number of isolated (degree-0) vertices.
    pub fn isolated(&self) -> usize {
        self.histogram.first().copied().unwrap_or(0)
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degree min {} / avg {:.2} / max {}",
            self.min, self.average, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&Graph::empty(0));
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.average, 0.0);
        assert!(s.histogram.is_empty());
    }

    #[test]
    fn edgeless_graph_stats() {
        let s = DegreeStats::of(&Graph::empty(4));
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.isolated(), 4);
    }

    #[test]
    fn cycle_stats() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.average, 2.0);
        assert_eq!(s.histogram, vec![0, 0, 5]);
        assert_eq!(s.isolated(), 0);
    }

    #[test]
    fn star_histogram() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.histogram, vec![0, 4, 0, 0, 1]);
        assert_eq!(s.average, 1.6);
    }

    #[test]
    fn display_formats() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let shown = DegreeStats::of(&g).to_string();
        assert!(shown.contains("min 1"));
        assert!(shown.contains("max 2"));
    }

    #[test]
    fn average_counts_multiplicity() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.average, 2.0); // weighted
        assert_eq!(s.max, 1); // unweighted adjacency size
    }
}
