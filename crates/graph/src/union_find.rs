//! Disjoint-set (union-find) forest with path halving and union by size.
//!
//! Used by [`contraction`](crate::contraction) to merge matched vertex
//! pairs and by [`traversal`](crate::traversal) for connected components.

/// A union-find structure over the elements `0..len`.
///
/// # Example
///
/// ```
/// use bisect_graph::union_find::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> UnionFind {
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            num_sets: len,
        }
    }

    /// Number of elements (across all sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The representative of the set containing `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets containing `x` and `y`; returns `true` if they
    /// were previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (mut rx, mut ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        if self.size[rx as usize] < self.size[ry as usize] {
            std::mem::swap(&mut rx, &mut ry);
        }
        self.parent[ry as usize] = rx;
        self.size[rx as usize] += self.size[ry as usize];
        self.num_sets -= 1;
        true
    }

    /// Whether `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn connected(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Size of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Relabels the sets with dense ids `0..num_sets()` and returns, for
    /// each element, the id of its set. Ids are assigned in order of
    /// first appearance, so element 0's set gets id 0.
    pub fn dense_labels(&mut self) -> Vec<u32> {
        let mut label = vec![u32::MAX; self.len()];
        let mut next = 0u32;
        let mut out = Vec::with_capacity(self.len());
        for x in 0..self.len() as u32 {
            let r = self.find(x);
            if label[r as usize] == u32::MAX {
                label[r as usize] = next;
                next += 1;
            }
            out.push(label[r as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(0), 2);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(2, 3));
    }

    #[test]
    fn dense_labels_first_appearance_order() {
        let mut uf = UnionFind::new(5);
        uf.union(1, 3);
        uf.union(2, 4);
        let labels = uf.dense_labels();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[4], 2);
    }

    #[test]
    fn all_merged_single_set() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(5), 8);
        assert!(uf.dense_labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_union_find() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
        assert!(uf.dense_labels().is_empty());
    }
}
