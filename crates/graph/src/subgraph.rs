//! Induced subgraphs.
//!
//! Used by the test suite and the exact solver to decompose disconnected
//! instances, and handy when experimenting with the planted models.

use crate::{Graph, GraphBuilder, GraphError, VertexId};

/// The subgraph of `g` induced by `vertices`, together with the map from
/// new ids to original ids (`new -> old`).
///
/// Vertex and edge weights are carried over.
///
/// # Errors
///
/// Returns [`GraphError::VertexOutOfRange`] if `vertices` contains an id
/// `>= g.num_vertices()`, and [`GraphError::DuplicateVertex`] if the
/// same id appears twice.
pub fn induced_subgraph(
    g: &Graph,
    vertices: &[VertexId],
) -> Result<(Graph, Vec<VertexId>), GraphError> {
    let mut old_to_new = vec![VertexId::MAX; g.num_vertices()];
    for (new, &old) in vertices.iter().enumerate() {
        if (old as usize) >= g.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: old as u64,
                num_vertices: g.num_vertices(),
            });
        }
        if old_to_new[old as usize] != VertexId::MAX {
            return Err(GraphError::DuplicateVertex { vertex: old as u64 });
        }
        old_to_new[old as usize] = new as VertexId;
    }
    let mut builder = GraphBuilder::new(vertices.len());
    for (new, &old) in vertices.iter().enumerate() {
        builder.set_vertex_weight(new as VertexId, g.vertex_weight(old))?;
    }
    for (new_u, &old_u) in vertices.iter().enumerate() {
        for (old_v, w) in g.neighbors_weighted(old_u) {
            let new_v = old_to_new[old_v as usize];
            if new_v != VertexId::MAX && (new_u as VertexId) < new_v {
                builder.add_weighted_edge(new_u as VertexId, new_v, w)?;
            }
        }
    }
    Ok((builder.build(), vertices.to_vec()))
}

/// Splits `g` into its connected components, each as an induced subgraph
/// with its `new -> old` vertex map, ordered by smallest original
/// vertex.
///
/// # Errors
///
/// Propagates [`GraphError`] from subgraph construction; the component
/// vertex lists themselves are always valid selections.
pub fn split_components(g: &Graph) -> Result<Vec<(Graph, Vec<VertexId>)>, GraphError> {
    let (labels, count) = crate::traversal::connected_components(g);
    // Two-pass counting sort into one flat array: count each group,
    // prefix-sum into offsets, then place vertices. Ascending vertex
    // order within each group is preserved, and there are no per-group
    // Vec allocations.
    let mut offsets = vec![0usize; count + 1];
    for v in g.vertices() {
        offsets[labels[v as usize] as usize + 1] += 1;
    }
    for c in 0..count {
        offsets[c + 1] += offsets[c];
    }
    let mut flat = vec![0 as VertexId; g.num_vertices()];
    let mut cursor = offsets.clone();
    for v in g.vertices() {
        let c = labels[v as usize] as usize;
        flat[cursor[c]] = v;
        cursor[c] += 1;
    }
    (0..count)
        .map(|c| induced_subgraph(g, &flat[offsets[c]..offsets[c + 1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_triangle_from_k4() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(4, &edges).unwrap();
        let (sub, map) = induced_subgraph(&g, &[0, 2, 3]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![0, 2, 3]);
    }

    #[test]
    fn induced_preserves_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 7).unwrap();
        b.set_vertex_weight(2, 5).unwrap();
        let g = b.build();
        let (sub, _) = induced_subgraph(&g, &[2, 0]).unwrap();
        assert_eq!(sub.vertex_weight(0), 5);
        assert_eq!(sub.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn induced_empty_selection() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let (sub, map) = induced_subgraph(&g, &[]).unwrap();
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn induced_rejects_duplicates() {
        let g = Graph::empty(3);
        assert_eq!(
            induced_subgraph(&g, &[1, 1]),
            Err(GraphError::DuplicateVertex { vertex: 1 })
        );
    }

    #[test]
    fn induced_rejects_out_of_range() {
        let g = Graph::empty(3);
        assert_eq!(
            induced_subgraph(&g, &[4]),
            Err(GraphError::VertexOutOfRange {
                vertex: 4,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn split_two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = split_components(&g).unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].0.num_vertices(), 3);
        assert_eq!(comps[0].1, vec![0, 1, 2]);
        assert_eq!(comps[1].0.num_vertices(), 2);
        assert_eq!(comps[1].1, vec![3, 4]);
    }

    #[test]
    fn split_connected_graph_is_identity_shape() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let comps = split_components(&g).unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].0.num_edges(), 2);
    }
}
