//! Cache-conscious vertex relabelings.
//!
//! At paper scale (|V| ≈ 2000–5000) the CSR arrays fit in L2 and vertex
//! order is irrelevant; at 10^6+ vertices a refinement sweep walks the
//! adjacency of essentially random vertex ids and every neighbor lookup
//! is a cache miss. Relabeling vertices so that neighbors get nearby ids
//! (BFS order) or so that the hottest rows pack together (degree order)
//! makes the sweeps stride through memory instead.
//!
//! A [`Reordering`] is a permutation with both directions materialized.
//! The intended protocol, used by the `huge` bench profile, is: relabel
//! the graph with [`Reordering::apply`] *before* refinement, run the
//! partitioner on the relabeled graph, then map the resulting side
//! assignment back with [`Reordering::to_old_sides`]. Relabeling is a
//! graph isomorphism, so cut weights and degree sequences are preserved
//! exactly (property-tested in `tests/proptests.rs`).

use std::collections::VecDeque;

use crate::{EdgeWeight, Graph, GraphError, VertexId};

/// A bijective relabeling of the vertices `0..n`, with both the
/// `new -> old` and `old -> new` directions materialized.
///
/// # Example
///
/// ```
/// use bisect_graph::{reorder, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 2), (2, 1), (1, 3)]).unwrap();
/// let r = reorder::bfs(&g);
/// let h = r.apply(&g);
/// assert_eq!(h.num_edges(), g.num_edges());
/// // BFS from vertex 0 visits 0, 2, 1, 3; vertex 2 becomes vertex 1.
/// assert_eq!(r.to_new(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    new_to_old: Vec<VertexId>,
    old_to_new: Vec<VertexId>,
}

impl Reordering {
    /// The identity relabeling on `n` vertices.
    pub fn identity(n: usize) -> Reordering {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        Reordering {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Builds a reordering from an explicit `new -> old` visitation
    /// order: `order[i]` is the old id of the vertex that becomes `i`.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if an id is `>= order.len()`,
    /// [`GraphError::DuplicateVertex`] if an id repeats (i.e. `order` is
    /// not a permutation).
    pub fn from_new_to_old(order: Vec<VertexId>) -> Result<Reordering, GraphError> {
        let n = order.len();
        let mut old_to_new = vec![VertexId::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            if old as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: old as u64,
                    num_vertices: n,
                });
            }
            if old_to_new[old as usize] != VertexId::MAX {
                return Err(GraphError::DuplicateVertex { vertex: old as u64 });
            }
            old_to_new[old as usize] = new as VertexId;
        }
        Ok(Reordering {
            new_to_old: order,
            old_to_new,
        })
    }

    /// Internal constructor for orders already known to be permutations.
    fn from_order_unchecked(order: Vec<VertexId>) -> Reordering {
        let mut old_to_new = vec![VertexId::MAX; order.len()];
        for (new, &old) in order.iter().enumerate() {
            debug_assert_eq!(old_to_new[old as usize], VertexId::MAX);
            old_to_new[old as usize] = new as VertexId;
        }
        Reordering {
            new_to_old: order,
            old_to_new,
        }
    }

    /// Number of vertices the reordering covers.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the reordering covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The old id of the vertex relabeled to `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of range.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// The new id assigned to old vertex `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// The full `new -> old` map.
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// The full `old -> new` map.
    pub fn old_to_new(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// The relabeled graph: vertex `new` of the result is vertex
    /// `to_old(new)` of `g`, with all edges and weights carried over.
    /// Builds the CSR arrays directly (no edge-list detour), sorting
    /// each relabeled adjacency list with one shared scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if the reordering was built for a different vertex count.
    pub fn apply(&self, g: &Graph) -> Graph {
        let n = g.num_vertices();
        assert_eq!(
            n,
            self.len(),
            "reordering covers {} vertices but the graph has {n}",
            self.len()
        );
        let mut xadj = vec![0usize; n + 1];
        for new in 0..n {
            xadj[new + 1] = xadj[new] + g.degree(self.new_to_old[new]);
        }
        let mut adjncy = vec![0 as VertexId; xadj[n]];
        let mut edge_weights = vec![0 as EdgeWeight; xadj[n]];
        let mut pairs: Vec<(VertexId, EdgeWeight)> = Vec::new();
        for (new, &old) in self.new_to_old.iter().enumerate() {
            pairs.clear();
            pairs.extend(
                g.neighbors_weighted(old)
                    .map(|(u, w)| (self.old_to_new[u as usize], w)),
            );
            pairs.sort_unstable_by_key(|&(nbr, _)| nbr);
            let lo = xadj[new];
            for (i, &(nbr, w)) in pairs.iter().enumerate() {
                adjncy[lo + i] = nbr;
                edge_weights[lo + i] = w;
            }
        }
        let vertex_weights = (0..n)
            .map(|new| g.vertex_weight(self.new_to_old[new]))
            .collect();
        Graph::from_csr(xadj, adjncy, edge_weights, vertex_weights)
    }

    /// Maps a side assignment on the *original* ids to the relabeled
    /// ids: entry `new` of the result is `old_side[to_old(new)]`.
    ///
    /// # Panics
    ///
    /// Panics if `old_side.len()` differs from [`len`](Reordering::len).
    pub fn to_new_sides(&self, old_side: &[bool]) -> Vec<bool> {
        assert_eq!(old_side.len(), self.len(), "side assignment length");
        self.new_to_old
            .iter()
            .map(|&old| old_side[old as usize])
            .collect()
    }

    /// Maps a side assignment on the *relabeled* ids back to the
    /// original ids — the inverse of
    /// [`to_new_sides`](Reordering::to_new_sides), used to report a
    /// partition computed on a relabeled graph in the caller's ids.
    ///
    /// # Panics
    ///
    /// Panics if `new_side.len()` differs from [`len`](Reordering::len).
    pub fn to_old_sides(&self, new_side: &[bool]) -> Vec<bool> {
        assert_eq!(new_side.len(), self.len(), "side assignment length");
        let mut old_side = vec![false; self.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            old_side[old as usize] = new_side[new];
        }
        old_side
    }

    /// Permutes any per-vertex array indexed by *original* ids into the
    /// relabeled index space: entry `new` of the result is
    /// `old_values[to_old(new)]`. The generic sibling of
    /// [`to_new_sides`](Reordering::to_new_sides), for carrying gains,
    /// weights, or side projections alongside a relabeled graph.
    ///
    /// # Panics
    ///
    /// Panics if `old_values.len()` differs from [`len`](Reordering::len).
    pub fn to_new_values<T: Copy>(&self, old_values: &[T]) -> Vec<T> {
        assert_eq!(old_values.len(), self.len(), "per-vertex array length");
        self.new_to_old
            .iter()
            .map(|&old| old_values[old as usize])
            .collect()
    }

    /// Permutes any per-vertex array indexed by *relabeled* ids back to
    /// the original index space — the inverse of
    /// [`to_new_values`](Reordering::to_new_values).
    ///
    /// # Panics
    ///
    /// Panics if `new_values.len()` differs from [`len`](Reordering::len).
    pub fn to_old_values<T: Copy>(&self, new_values: &[T]) -> Vec<T> {
        assert_eq!(new_values.len(), self.len(), "per-vertex array length");
        let mut old_values = new_values.to_vec();
        for (new, &old) in self.new_to_old.iter().enumerate() {
            old_values[old as usize] = new_values[new];
        }
        old_values
    }
}

/// Breadth-first relabeling: vertices are numbered in BFS visitation
/// order, entering components in increasing order of their smallest
/// vertex and visiting neighbors in increasing id order. Neighboring
/// vertices end up with nearby ids, so a refinement sweep over the
/// relabeled graph touches adjacency rows roughly in storage order.
pub fn bfs(g: &Graph) -> Reordering {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for root in 0..n as VertexId {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    Reordering::from_order_unchecked(order)
}

/// Degree relabeling: vertices are numbered by descending degree (ties
/// broken by ascending original id), so the largest adjacency rows — the
/// ones most often revisited by gain updates — pack together at the
/// front of the arrays.
pub fn by_degree(g: &Graph) -> Reordering {
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    Reordering::from_order_unchecked(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut_of(g: &Graph, side: &[bool]) -> u64 {
        g.edges()
            .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }

    #[test]
    fn identity_roundtrip() {
        let r = Reordering::identity(4);
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(r.apply(&g), g);
        assert_eq!(r.to_new(3), 3);
    }

    #[test]
    fn bfs_orders_path_contiguously() {
        // Path stored in scrambled id order: 3-1-4-0-2.
        let g = Graph::from_edges(5, &[(3, 1), (1, 4), (4, 0), (0, 2)]).unwrap();
        let r = bfs(&g);
        let h = r.apply(&g);
        // In BFS order every path vertex neighbors ids within distance 2.
        for v in h.vertices() {
            for &u in h.neighbors(v) {
                assert!((v as i64 - u as i64).abs() <= 2, "{v} - {u}");
            }
        }
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn bfs_covers_all_components() {
        let g = Graph::from_edges(5, &[(3, 4)]).unwrap();
        let r = bfs(&g);
        let mut olds = r.new_to_old().to_vec();
        olds.sort_unstable();
        assert_eq!(olds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        // Star with center 3.
        let g = Graph::from_edges(5, &[(3, 0), (3, 1), (3, 2), (3, 4)]).unwrap();
        let r = by_degree(&g);
        assert_eq!(r.to_old(0), 3);
        let h = r.apply(&g);
        assert_eq!(h.degree(0), 4);
    }

    #[test]
    fn apply_preserves_cut_and_degrees() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
            .unwrap();
        let r = Reordering::from_new_to_old(vec![5, 3, 0, 4, 1, 2]).unwrap();
        let h = r.apply(&g);
        let old_side = vec![true, true, true, false, false, false];
        let new_side = r.to_new_sides(&old_side);
        assert_eq!(cut_of(&g, &old_side), cut_of(&h, &new_side));
        assert_eq!(r.to_old_sides(&new_side), old_side);
        for v in g.vertices() {
            assert_eq!(g.degree(v), h.degree(r.to_new(v)));
            assert_eq!(g.weighted_degree(v), h.weighted_degree(r.to_new(v)));
        }
    }

    #[test]
    fn apply_preserves_weights() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 7).unwrap();
        b.set_vertex_weight(2, 5).unwrap();
        let g = b.build();
        let r = Reordering::from_new_to_old(vec![2, 0, 1]).unwrap();
        let h = r.apply(&g);
        assert_eq!(h.vertex_weight(0), 5);
        assert_eq!(h.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn from_new_to_old_validates() {
        assert!(matches!(
            Reordering::from_new_to_old(vec![0, 0]),
            Err(GraphError::DuplicateVertex { vertex: 0 })
        ));
        assert!(matches!(
            Reordering::from_new_to_old(vec![0, 2]),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
    }

    #[test]
    fn generic_value_maps_roundtrip_and_match_side_maps() {
        let r = Reordering::from_new_to_old(vec![5, 3, 0, 4, 1, 2]).unwrap();
        let old_gains: Vec<i64> = vec![-3, 0, 7, 2, -1, 9];
        let new_gains = r.to_new_values(&old_gains);
        for new in 0..r.len() as VertexId {
            assert_eq!(new_gains[new as usize], old_gains[r.to_old(new) as usize]);
        }
        assert_eq!(r.to_old_values(&new_gains), old_gains);

        // `to_new_sides`/`to_old_sides` are the `bool` specialization.
        let old_side = vec![true, false, true, false, true, false];
        assert_eq!(r.to_new_values(&old_side), r.to_new_sides(&old_side));
        let new_side = r.to_new_sides(&old_side);
        assert_eq!(r.to_old_values(&new_side), r.to_old_sides(&new_side));
    }

    #[test]
    fn empty_reordering() {
        let r = Reordering::identity(0);
        assert!(r.is_empty());
        assert_eq!(r.apply(&Graph::empty(0)).num_vertices(), 0);
    }
}
