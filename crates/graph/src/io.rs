//! Graph and netlist readers and writers.
//!
//! Three formats are supported:
//!
//! * **METIS** `.graph` format — header `n m [fmt]`, then one line per
//!   vertex listing its (1-based) neighbors; `fmt` `1` adds edge
//!   weights, `10` vertex weights, `11` both. Comment lines start
//!   with `%`.
//! * **Edge list** — one `u v [w]` triple per line, 0-based, with `#`
//!   comments; the vertex count is one more than the largest endpoint
//!   unless given explicitly.
//! * **hMETIS** `.hgr` hypergraph format — header `nets cells [fmt]`,
//!   one line of (1-based) pins per net, optional net/cell weights
//!   ([`read_hgr`]/[`write_hgr`]).

use std::io::{BufRead, BufReader, Read, Write};

use crate::{EdgeWeight, Graph, GraphBuilder, GraphError, VertexId};

/// Reads a graph in METIS `.graph` format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input (bad header, wrong
/// line count, out-of-range endpoints, asymmetric adjacency is *not*
/// detected — METIS files are trusted to be symmetric and both copies of
/// each edge merge to one), or [`GraphError::Io`] on read failure.
pub fn read_metis<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header.
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed.to_string());
            }
            None => {
                return Err(GraphError::Parse {
                    line: 1,
                    message: "missing header".into(),
                })
            }
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 3 {
        return Err(GraphError::Parse {
            line: header_line_no,
            message: format!("header must be `n m [fmt]`, got {} fields", fields.len()),
        });
    }
    let n: usize = parse_num(fields[0], header_line_no)?;
    let m: usize = parse_num(fields[1], header_line_no)?;
    let fmt = if fields.len() == 3 { fields[2] } else { "0" };
    let (has_vweights, has_eweights) = match fmt {
        "0" | "00" => (false, false),
        "1" | "01" => (false, true),
        "10" => (true, false),
        "11" => (true, true),
        other => {
            return Err(GraphError::Parse {
                line: header_line_no,
                message: format!("unsupported fmt `{other}`"),
            })
        }
    };

    let mut builder = GraphBuilder::new(n);
    builder.reserve_edges(m);
    let mut vertex: usize = 0;
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('%') {
            continue;
        }
        if vertex >= n {
            if trimmed.is_empty() {
                continue;
            }
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("more than {n} vertex lines"),
            });
        }
        let mut tokens = trimmed.split_whitespace();
        if has_vweights {
            let w: u64 = match tokens.next() {
                Some(t) => parse_num(t, line_no)?,
                None => {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: "missing vertex weight".into(),
                    })
                }
            };
            if w == 0 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "vertex weight must be positive".into(),
                });
            }
            builder
                .set_vertex_weight(vertex as VertexId, w)
                .map_err(|e| parse_wrap(e, line_no))?;
        }
        while let Some(tok) = tokens.next() {
            let nbr1: u64 = parse_num(tok, line_no)?;
            if nbr1 == 0 || nbr1 > n as u64 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("neighbor {nbr1} out of 1..={n}"),
                });
            }
            let nbr = (nbr1 - 1) as VertexId;
            let w: EdgeWeight = if has_eweights {
                match tokens.next() {
                    Some(t) => parse_num(t, line_no)?,
                    None => {
                        return Err(GraphError::Parse {
                            line: line_no,
                            message: "missing edge weight".into(),
                        })
                    }
                }
            } else {
                1
            };
            // Each undirected edge appears twice in a METIS file; add it
            // only from the smaller endpoint to avoid doubling weights.
            if (vertex as VertexId) < nbr {
                builder
                    .add_weighted_edge(vertex as VertexId, nbr, w)
                    .map_err(|e| parse_wrap(e, line_no))?;
            } else if vertex as VertexId == nbr {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("self loop at vertex {}", nbr1),
                });
            }
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {n} vertex lines, found {vertex}"),
        });
    }
    let g = builder.build();
    if g.num_edges() != m {
        return Err(GraphError::Parse {
            line: header_line_no,
            message: format!("header declares {m} edges, file contains {}", g.num_edges()),
        });
    }
    Ok(g)
}

/// Writes `g` in METIS `.graph` format. Weights are emitted only when
/// non-unit (fmt `11`, `10`, `1`, or `0` as appropriate).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_metis<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    let has_vweights = g.vertices().any(|v| g.vertex_weight(v) != 1);
    let has_eweights = g.edges().any(|(_, _, w)| w != 1);
    let fmt = match (has_vweights, has_eweights) {
        (false, false) => "",
        (false, true) => " 1",
        (true, false) => " 10",
        (true, true) => " 11",
    };
    writeln!(writer, "{} {}{fmt}", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        let mut first = true;
        if has_vweights {
            write!(writer, "{}", g.vertex_weight(v))?;
            first = false;
        }
        for (u, w) in g.neighbors_weighted(v) {
            if !first {
                write!(writer, " ")?;
            }
            first = false;
            write!(writer, "{}", u + 1)?;
            if has_eweights {
                write!(writer, " {w}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a 0-based edge list (`u v [w]` per line, `#` comments). The
/// vertex count is `max endpoint + 1`, or `num_vertices` if given.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines or endpoints beyond
/// an explicit `num_vertices`, and [`GraphError::Io`] on read failure.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_vertices: Option<usize>,
) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId, EdgeWeight)> = Vec::new();
    let mut max_vertex: u64 = 0;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        if toks.len() != 2 && toks.len() != 3 {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("expected `u v [w]`, got {} tokens", toks.len()),
            });
        }
        let u: u64 = parse_num(toks[0], line_no)?;
        let v: u64 = parse_num(toks[1], line_no)?;
        let w: EdgeWeight = if toks.len() == 3 {
            parse_num(toks[2], line_no)?
        } else {
            1
        };
        if u > VertexId::MAX as u64 || v > VertexId::MAX as u64 {
            return Err(GraphError::Parse {
                line: line_no,
                message: "vertex id too large".into(),
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_vertex as usize + 1
    });
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in edges {
        builder.add_weighted_edge(u, v, w).map_err(|e| match e {
            GraphError::VertexOutOfRange { .. } | GraphError::SelfLoop { .. } => e,
            other => other,
        })?;
    }
    Ok(builder.build())
}

/// Writes `g` as a 0-based edge list, one `u v [w]` per line (`w` only
/// when non-unit).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    for (u, v, w) in g.edges() {
        if w == 1 {
            writeln!(writer, "{u} {v}")?;
        } else {
            writeln!(writer, "{u} {v} {w}")?;
        }
    }
    Ok(())
}

/// Reads a hypergraph netlist in hMETIS `.hgr` format: header
/// `num_nets num_cells [fmt]`, then one line of (1-based) pins per net;
/// `fmt` `1` prefixes each net line with a weight, `10` appends one
/// cell-weight line per cell, `11` both. `%` comments allowed.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input or
/// [`GraphError::Io`] on read failure.
pub fn read_hgr<R: Read>(reader: R) -> Result<crate::hypergraph::Netlist, GraphError> {
    let reader = BufReader::new(reader);
    let mut lines = reader
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| match l {
            Ok(text) => {
                let t = text.trim();
                !t.is_empty() && !t.starts_with('%')
            }
            Err(_) => true,
        });

    let (header_no, header) = match lines.next() {
        Some((no, line)) => (no, line?),
        None => {
            return Err(GraphError::Parse {
                line: 1,
                message: "missing header".into(),
            })
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 3 {
        return Err(GraphError::Parse {
            line: header_no,
            message: format!(
                "header must be `nets cells [fmt]`, got {} fields",
                fields.len()
            ),
        });
    }
    let num_nets: usize = parse_num(fields[0], header_no)?;
    let num_cells: usize = parse_num(fields[1], header_no)?;
    let fmt = if fields.len() == 3 { fields[2] } else { "0" };
    let (has_nweights, has_cweights) = match fmt {
        "0" | "00" => (false, false),
        "1" | "01" => (true, false),
        "10" => (false, true),
        "11" => (true, true),
        other => {
            return Err(GraphError::Parse {
                line: header_no,
                message: format!("unsupported fmt `{other}`"),
            })
        }
    };

    let mut builder = crate::hypergraph::NetlistBuilder::new(num_cells);
    for _ in 0..num_nets {
        let (no, line) = lines.next().ok_or(GraphError::Parse {
            line: header_no,
            message: format!("expected {num_nets} net lines"),
        })?;
        let line = line?;
        let mut tokens = line.split_whitespace();
        let weight: EdgeWeight = if has_nweights {
            parse_num(
                tokens.next().ok_or(GraphError::Parse {
                    line: no,
                    message: "missing net weight".into(),
                })?,
                no,
            )?
        } else {
            1
        };
        let mut pins = Vec::new();
        for tok in tokens {
            let pin1: u64 = parse_num(tok, no)?;
            if pin1 == 0 || pin1 > num_cells as u64 {
                return Err(GraphError::Parse {
                    line: no,
                    message: format!("pin {pin1} out of 1..={num_cells}"),
                });
            }
            pins.push((pin1 - 1) as VertexId);
        }
        builder
            .add_weighted_net(&pins, weight)
            .map_err(|e| parse_wrap(e, no))?;
    }
    if has_cweights {
        for c in 0..num_cells {
            let (no, line) = lines.next().ok_or(GraphError::Parse {
                line: header_no,
                message: format!("expected {num_cells} cell weight lines"),
            })?;
            let line = line?;
            let w: u64 = parse_num(line.trim(), no)?;
            if w == 0 {
                return Err(GraphError::Parse {
                    line: no,
                    message: "cell weight must be positive".into(),
                });
            }
            builder
                .set_cell_weight(c as VertexId, w)
                .map_err(|e| parse_wrap(e, no))?;
        }
    }
    if let Some((no, _)) = lines.next() {
        return Err(GraphError::Parse {
            line: no,
            message: "trailing content".into(),
        });
    }
    Ok(builder.build())
}

/// Writes a netlist in hMETIS `.hgr` format (weights emitted only when
/// non-unit).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_hgr<W: Write>(
    nl: &crate::hypergraph::Netlist,
    mut writer: W,
) -> Result<(), GraphError> {
    let has_nweights = nl.net_ids().any(|n| nl.net_weight(n) != 1);
    let has_cweights = nl.cells().any(|c| nl.cell_weight(c) != 1);
    let fmt = match (has_nweights, has_cweights) {
        (false, false) => "",
        (true, false) => " 1",
        (false, true) => " 10",
        (true, true) => " 11",
    };
    writeln!(writer, "{} {}{fmt}", nl.num_nets(), nl.num_cells())?;
    for n in nl.net_ids() {
        let mut first = true;
        if has_nweights {
            write!(writer, "{}", nl.net_weight(n))?;
            first = false;
        }
        for &p in nl.pins(n) {
            if !first {
                write!(writer, " ")?;
            }
            first = false;
            write!(writer, "{}", p + 1)?;
        }
        writeln!(writer)?;
    }
    if has_cweights {
        for c in nl.cells() {
            writeln!(writer, "{}", nl.cell_weight(c))?;
        }
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(tok: &str, line: usize) -> Result<T, GraphError> {
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid number `{tok}`"),
    })
}

fn parse_wrap(err: GraphError, line: usize) -> GraphError {
    GraphError::Parse {
        line,
        message: err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metis_roundtrip_simple() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn metis_roundtrip_weighted() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 4).unwrap();
        b.add_edge(1, 2).unwrap();
        b.set_vertex_weight(2, 9).unwrap();
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn metis_parses_reference_text() {
        let text = "% a comment\n4 3\n2\n1 3\n2 4\n3\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn metis_rejects_bad_header() {
        assert!(matches!(
            read_metis("4\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_metis("".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_wrong_edge_count() {
        let text = "3 5\n2\n1\n\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_out_of_range_neighbor() {
        let text = "2 1\n3\n1\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_self_loop() {
        let text = "2 1\n1\n2\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_too_many_lines() {
        let text = "2 1\n2\n1\n2\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::from_edges(5, &[(0, 4), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice(), Some(5)).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_infers_vertex_count() {
        let g = read_edge_list("0 1\n1 7\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let g = read_edge_list("# header\n0 1 # trailing\n\n1 2\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_weighted() {
        let g = read_edge_list("0 1 5\n".as_bytes(), None).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 1 5\n");
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), None).is_err());
        assert!(read_edge_list("0\n".as_bytes(), None).is_err());
        assert!(read_edge_list("0 1 2 3\n".as_bytes(), None).is_err());
    }

    #[test]
    fn edge_list_respects_explicit_count() {
        assert!(read_edge_list("0 9\n".as_bytes(), Some(5)).is_err());
    }

    #[test]
    fn hgr_roundtrip_simple() {
        let mut b = crate::hypergraph::NetlistBuilder::new(5);
        b.add_net(&[0, 1, 2]).unwrap();
        b.add_net(&[2, 3, 4]).unwrap();
        b.add_net(&[0, 4]).unwrap();
        let nl = b.build();
        let mut buf = Vec::new();
        write_hgr(&nl, &mut buf).unwrap();
        let back = read_hgr(buf.as_slice()).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn hgr_roundtrip_weighted() {
        let mut b = crate::hypergraph::NetlistBuilder::new(3);
        b.add_weighted_net(&[0, 1], 4).unwrap();
        b.add_net(&[1, 2]).unwrap();
        b.set_cell_weight(2, 9).unwrap();
        let nl = b.build();
        let mut buf = Vec::new();
        write_hgr(&nl, &mut buf).unwrap();
        let back = read_hgr(buf.as_slice()).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn hgr_parses_reference_text() {
        let text = "% comment\n2 4\n1 2\n3 4 2\n";
        let nl = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.pins(0), &[0, 1]);
        assert_eq!(nl.pins(1), &[1, 2, 3]);
    }

    #[test]
    fn hgr_rejects_malformed() {
        assert!(read_hgr("".as_bytes()).is_err()); // no header
        assert!(read_hgr("2 4\n1 2\n".as_bytes()).is_err()); // missing net line
        assert!(read_hgr("1 2\n3\n".as_bytes()).is_err()); // pin out of range
        assert!(read_hgr("1 2\n0 1\n".as_bytes()).is_err()); // pin 0 (1-based)
        assert!(read_hgr("1 2 7\n1 2\n".as_bytes()).is_err()); // bad fmt
        assert!(read_hgr("1 2\n1 2\nextra\n".as_bytes()).is_err()); // trailing
        assert!(read_hgr("1 2 10\n1 2\n0\n1\n".as_bytes()).is_err()); // zero weight
    }

    #[test]
    fn hgr_cell_weights_section() {
        let text = "1 3 10\n1 2 3\n5\n1\n2\n";
        let nl = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(nl.cell_weight(0), 5);
        assert_eq!(nl.cell_weight(2), 2);
    }

    #[test]
    fn empty_edge_list() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let g = read_edge_list("".as_bytes(), Some(3)).unwrap();
        assert_eq!(g.num_vertices(), 3);
    }
}
