//! Edge contraction (coarsening) and projection back to the fine graph.
//!
//! Step 2 of the paper's compaction heuristic (§V): "Form a new graph
//! `G'` by contracting the edges in the random matching `M`. That is,
//! coalesce the two endpoints of an edge in the random matching to form
//! a new vertex."
//!
//! Contracting a matching merges each matched pair into one coarse
//! vertex. Parallel edges that arise are merged with summed weights, and
//! the matched edge itself disappears (it would be a self loop). Coarse
//! vertex weights record how many original vertices each coarse vertex
//! stands for, so that a *weight*-balanced bisection of `G'` projects to
//! a *vertex*-balanced bisection of `G`, and the weighted coarse cut
//! equals the fine cut exactly (tested below and by property tests).

use crate::matching::Matching;
use crate::{Graph, GraphBuilder, VertexId};

/// The result of contracting a matching: the coarse graph together with
/// the fine-to-coarse vertex map.
///
/// # Example
///
/// ```
/// use bisect_graph::{Graph, matching::Matching, contraction::contract_matching};
///
/// // Path 0-1-2-3; contract the edge (1, 2).
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let m = Matching::from_pairs(4, &[(1, 2)]);
/// let c = contract_matching(&g, &m);
/// assert_eq!(c.coarse().num_vertices(), 3);
/// assert_eq!(c.map(1), c.map(2));
/// assert_eq!(c.coarse().vertex_weight(c.map(1)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Contraction {
    coarse: Graph,
    fine_to_coarse: Vec<VertexId>,
    num_fine: usize,
}

impl Contraction {
    /// The coarse (contracted) graph `G'`.
    pub fn coarse(&self) -> &Graph {
        &self.coarse
    }

    /// The coarse vertex that fine vertex `v` was merged into.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the fine graph.
    pub fn map(&self, v: VertexId) -> VertexId {
        self.fine_to_coarse[v as usize]
    }

    /// The full fine-to-coarse map, indexed by fine vertex id.
    pub fn fine_to_coarse(&self) -> &[VertexId] {
        &self.fine_to_coarse
    }

    /// Number of vertices of the fine graph.
    pub fn num_fine(&self) -> usize {
        self.num_fine
    }

    /// Projects a coarse side assignment (`side[c]` for each coarse
    /// vertex) to a fine side assignment: every fine vertex inherits the
    /// side of its coarse image. This is step 4 of the compaction
    /// heuristic ("uncompact the edges … and create an initial bisection
    /// `(A, B)` from `(A', B')`").
    ///
    /// # Panics
    ///
    /// Panics if `coarse_side.len()` differs from the coarse vertex
    /// count.
    pub fn project_sides(&self, coarse_side: &[bool]) -> Vec<bool> {
        assert_eq!(
            coarse_side.len(),
            self.coarse.num_vertices(),
            "side assignment length must match coarse vertex count"
        );
        self.fine_to_coarse
            .iter()
            .map(|&c| coarse_side[c as usize])
            .collect()
    }
}

/// Contracts the matched pairs of `m` in `g`. Unmatched vertices survive
/// unchanged (with their original weight). Coarse ids are assigned in
/// order of first appearance of each group along fine vertex order, so
/// the map is deterministic given the matching.
///
/// # Panics
///
/// Panics if the matching was built for a different vertex count.
// lint: allow(no-panic) — sums of positive fine weights stay positive,
// cu != cv is checked before add_edge, and ids are in range.
pub fn contract_matching(g: &Graph, m: &Matching) -> Contraction {
    let n = g.num_vertices();
    // Assign coarse ids.
    let mut fine_to_coarse = vec![VertexId::MAX; n];
    let mut next: VertexId = 0;
    for v in 0..n as VertexId {
        if fine_to_coarse[v as usize] != VertexId::MAX {
            continue;
        }
        fine_to_coarse[v as usize] = next;
        if let Some(u) = m.mate(v) {
            assert_eq!(
                fine_to_coarse[u as usize],
                VertexId::MAX,
                "matching must pair each vertex at most once"
            );
            fine_to_coarse[u as usize] = next;
        }
        next += 1;
    }
    let num_coarse = next as usize;

    let mut builder = GraphBuilder::new(num_coarse);
    builder.reserve_edges(g.num_edges());
    // Coarse vertex weights: sum of fine weights in each group.
    let mut weights = vec![0u64; num_coarse];
    for v in 0..n as VertexId {
        weights[fine_to_coarse[v as usize] as usize] += g.vertex_weight(v);
    }
    for (c, &w) in weights.iter().enumerate() {
        builder
            .set_vertex_weight(c as VertexId, w)
            .expect("coarse weights are positive sums of positive weights");
    }
    for (u, v, w) in g.edges() {
        let (cu, cv) = (fine_to_coarse[u as usize], fine_to_coarse[v as usize]);
        if cu != cv {
            builder
                .add_weighted_edge(cu, cv, w)
                .expect("coarse endpoints are in range and distinct");
        }
    }
    Contraction {
        coarse: builder.build(),
        fine_to_coarse,
        num_fine: n,
    }
}

/// Repeatedly contracts random maximal matchings until the graph has at
/// most `target_vertices` vertices or a matching makes no progress.
/// Returns the ladder of contractions, finest first. Used by the
/// multilevel extension.
pub fn coarsen_to<R: rand::Rng + ?Sized>(
    g: &Graph,
    target_vertices: usize,
    rng: &mut R,
) -> Vec<Contraction> {
    let mut ladder = Vec::new();
    let mut current = g.clone();
    while current.num_vertices() > target_vertices {
        let m = crate::matching::random_maximal(&current, rng);
        if m.is_empty() {
            break;
        }
        let c = contract_matching(&current, &m);
        current = c.coarse().clone();
        ladder.push(c);
    }
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cut_of(g: &Graph, side: &[bool]) -> u64 {
        g.edges()
            .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }

    #[test]
    fn contract_single_edge_of_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let m = Matching::from_pairs(4, &[(1, 2)]);
        let c = contract_matching(&g, &m);
        let gc = c.coarse();
        assert_eq!(gc.num_vertices(), 3);
        assert_eq!(gc.num_edges(), 2);
        assert_eq!(gc.total_vertex_weight(), 4);
        // Matched edge vanished; its weight is not in the coarse graph.
        assert_eq!(gc.total_edge_weight(), 2);
    }

    #[test]
    fn triangle_contraction_creates_weighted_edge() {
        // Triangle 0-1-2; contract (0,1): coarse graph has vertices
        // {01, 2} and a single edge of weight 2 (the two fine edges
        // 0-2 and 1-2 merge).
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let m = Matching::from_pairs(3, &[(0, 1)]);
        let c = contract_matching(&g, &m);
        assert_eq!(c.coarse().num_vertices(), 2);
        assert_eq!(c.coarse().num_edges(), 1);
        assert_eq!(c.coarse().edge_weight(0, 1), Some(2));
    }

    #[test]
    fn empty_matching_is_identity_on_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let m = Matching::empty(4);
        let c = contract_matching(&g, &m);
        assert_eq!(c.coarse().num_vertices(), 4);
        assert_eq!(c.coarse().num_edges(), 2);
        assert_eq!(c.fine_to_coarse(), &[0, 1, 2, 3]);
    }

    #[test]
    fn map_is_consistent_with_matching() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let m = Matching::from_pairs(6, &[(1, 2), (4, 5)]);
        let c = contract_matching(&g, &m);
        assert_eq!(c.map(1), c.map(2));
        assert_eq!(c.map(4), c.map(5));
        assert_ne!(c.map(0), c.map(1));
        assert_eq!(c.num_fine(), 6);
    }

    #[test]
    fn projection_preserves_cut() {
        // Cut preservation: weighted coarse cut equals fine cut of the
        // projected sides, for a hand-built example.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (3, 4),
                (3, 5),
                (4, 5),
                (2, 3),
                (1, 4),
            ],
        )
        .unwrap();
        let m = Matching::from_pairs(6, &[(0, 1), (3, 4)]);
        let c = contract_matching(&g, &m);
        let gc = c.coarse();
        // Enumerate all coarse side assignments and compare cuts.
        let k = gc.num_vertices();
        for mask in 0..1u32 << k {
            let coarse_side: Vec<bool> = (0..k).map(|i| mask >> i & 1 == 1).collect();
            let fine_side = c.project_sides(&coarse_side);
            assert_eq!(
                cut_of(gc, &coarse_side),
                cut_of(&g, &fine_side),
                "mask {mask}"
            );
        }
    }

    #[test]
    fn projection_preserves_weight_balance() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
        let c = contract_matching(&g, &m);
        let fine = c.project_sides(&[true, false]);
        assert_eq!(fine.iter().filter(|&&s| s).count(), 2);
    }

    #[test]
    #[should_panic(expected = "side assignment length")]
    fn project_wrong_length_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let c = contract_matching(&g, &Matching::empty(2));
        let _ = c.project_sides(&[true]);
    }

    #[test]
    fn coarsen_to_reduces_size() {
        let n = 64;
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (i as VertexId, (i + 1) as VertexId))
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let ladder = coarsen_to(&g, 10, &mut rng);
        assert!(!ladder.is_empty());
        let last = ladder.last().unwrap().coarse();
        assert!(last.num_vertices() <= g.num_vertices() / 2 + 1);
        // Total vertex weight is invariant through the whole ladder.
        for c in &ladder {
            assert_eq!(c.coarse().total_vertex_weight(), n as u64);
        }
    }

    #[test]
    fn coarsen_stops_on_edgeless_graph() {
        let g = Graph::empty(8);
        let mut rng = StdRng::seed_from_u64(5);
        let ladder = coarsen_to(&g, 2, &mut rng);
        assert!(ladder.is_empty());
    }

    #[test]
    fn random_matching_contraction_preserves_total_weight() {
        let n = 40;
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let m = matching::random_maximal(&g, &mut rng);
        let c = contract_matching(&g, &m);
        assert_eq!(c.coarse().total_vertex_weight(), n as u64);
        assert_eq!(c.coarse().num_vertices(), n - m.len());
    }
}
