//! Compact undirected graphs and the structural operations needed by the
//! graph-bisection heuristics of Bui, Heigham, Jones & Leighton (DAC 1989).
//!
//! The crate provides:
//!
//! * [`Graph`] — an immutable undirected graph in compressed sparse row
//!   form, with integer vertex and edge weights (weights are all `1` for
//!   the simple graphs of the paper, and carry multiplicities after
//!   [`contraction`] module).
//! * [`GraphBuilder`] — incremental, deduplicating construction.
//! * [`matching`] — random maximal matchings (the paper's "maximum random
//!   matching" used by the compaction heuristic) and heavy-edge matchings.
//! * [`contraction`] — edge contraction / coarsening with projection maps,
//!   the other half of the compaction heuristic.
//! * [`reorder`] — cache-conscious vertex relabelings (BFS and degree
//!   order) for million-vertex instances.
//! * [`traversal`] — BFS/DFS, connected components, bipartiteness.
//! * [`union_find`] — disjoint sets, used by contraction and components.
//! * [`io`] — METIS `.graph` and plain edge-list readers/writers.
//! * [`stats`] — degree statistics (the paper's analysis is parameterized
//!   by average degree).
//!
//! # Example
//!
//! ```
//! use bisect_graph::GraphBuilder;
//!
//! // A 4-cycle: 0-1-2-3-0.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1).unwrap();
//! b.add_edge(1, 2).unwrap();
//! b.add_edge(2, 3).unwrap();
//! b.add_edge(3, 0).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.degree(0), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;

pub mod contraction;
pub mod hypergraph;
pub mod io;
pub mod matching;
pub mod reorder;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod union_find;

pub use builder::{EdgeStream, GraphBuilder};
pub use csr::{EdgeIter, Graph, NeighborIter};
pub use error::GraphError;

/// Identifier of a vertex; vertices of a graph on `n` vertices are
/// `0..n as VertexId`.
pub type VertexId = u32;

/// Integer edge weight. Simple graphs use weight `1`; contracted graphs
/// use weights to record edge multiplicities.
pub type EdgeWeight = u64;

/// Integer vertex weight. Simple graphs use weight `1`; contracted graphs
/// use weights to record how many original vertices a coarse vertex
/// represents.
pub type VertexWeight = u64;
