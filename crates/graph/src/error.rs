use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint was `>=` the declared number of vertices.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A self loop `(v, v)` was supplied where none is allowed.
    SelfLoop {
        /// The looping vertex.
        vertex: u64,
    },
    /// An edge or vertex weight of zero was supplied.
    ZeroWeight,
    /// The same vertex appeared twice where distinct ids are required
    /// (e.g. a subgraph selection).
    DuplicateVertex {
        /// The repeated vertex id.
        vertex: u64,
    },
    /// The two passes of a streaming build emitted different edge
    /// sequences (see `GraphBuilder::stream`).
    StreamMismatch {
        /// Edge records emitted by the counting pass.
        counted: usize,
        /// Edge records emitted by the filling pass.
        emitted: usize,
    },
    /// A parse error with a line number, for the readers in [`crate::io`].
    Parse {
        /// 1-based line number of the malformed input.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An I/O error message (stringified; `std::io::Error` is not `Clone`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph on {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self loop at vertex {vertex} is not allowed")
            }
            GraphError::ZeroWeight => write!(f, "weights must be positive"),
            GraphError::DuplicateVertex { vertex } => {
                write!(f, "duplicate vertex {vertex}")
            }
            GraphError::StreamMismatch { counted, emitted } => write!(
                f,
                "streaming build passes disagree: counted {counted} edge records, emitted {emitted}"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_range() {
        let err = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert_eq!(
            err.to_string(),
            "vertex 9 out of range for graph on 4 vertices"
        );
    }

    #[test]
    fn display_self_loop() {
        let err = GraphError::SelfLoop { vertex: 3 };
        assert_eq!(err.to_string(), "self loop at vertex 3 is not allowed");
    }

    #[test]
    fn display_parse() {
        let err = GraphError::Parse {
            line: 2,
            message: "bad token".into(),
        };
        assert_eq!(err.to_string(), "parse error at line 2: bad token");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = GraphError::from(io);
        assert!(matches!(err, GraphError::Io(_)));
        assert!(err.to_string().contains("missing"));
    }
}
