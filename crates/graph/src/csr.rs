use crate::{EdgeWeight, GraphError, VertexId, VertexWeight};

/// The CSR offset array, stored as `u32` when every offset fits (the
/// common case: graphs with fewer than 2^32 directed adjacency entries)
/// and widened to `usize` otherwise. At 10^6 vertices the narrow form
/// halves the offset footprint, which keeps more of the adjacency
/// structure resident in cache during refinement sweeps.
///
/// Equality is by offset *values*, not representation, so a narrow and a
/// wide array describing the same graph compare equal.
#[derive(Debug, Clone)]
pub(crate) enum Offsets {
    /// Offsets that fit in `u32`.
    Narrow(Vec<u32>),
    /// Fallback for graphs with 2^32 or more directed entries.
    Wide(Vec<usize>),
}

impl Offsets {
    /// Chooses the narrow representation when the final (largest) offset
    /// fits in `u32`.
    pub(crate) fn from_wide(xadj: Vec<usize>) -> Offsets {
        match xadj.last() {
            Some(&last) if last <= u32::MAX as usize => {
                Offsets::Narrow(xadj.into_iter().map(|x| x as u32).collect())
            }
            _ => Offsets::Wide(xadj),
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> usize {
        match self {
            Offsets::Narrow(v) => v[i] as usize,
            Offsets::Wide(v) => v[i],
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            Offsets::Narrow(v) => v.len(),
            Offsets::Wide(v) => v.len(),
        }
    }

    pub(crate) fn is_narrow(&self) -> bool {
        matches!(self, Offsets::Narrow(_))
    }
}

impl PartialEq for Offsets {
    fn eq(&self, other: &Offsets) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for Offsets {}

/// An immutable undirected graph in compressed sparse row (CSR) form.
///
/// Vertices are `0..num_vertices() as VertexId`. Each undirected edge is
/// stored twice (once per endpoint) with identical weight; the adjacency
/// list of every vertex is sorted by neighbor id, which makes
/// [`has_edge`](Graph::has_edge) a binary search. Self loops are never
/// stored; parallel edges are merged into a single entry whose weight is
/// the sum of multiplicities.
///
/// Construct graphs with [`GraphBuilder`](crate::GraphBuilder) or the
/// [`Graph::from_edges`] convenience constructor.
///
/// # Example
///
/// ```
/// use bisect_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Offsets,
    adjncy: Vec<VertexId>,
    edge_weights: Vec<EdgeWeight>,
    vertex_weights: Vec<VertexWeight>,
    num_edges: usize,
    total_edge_weight: EdgeWeight,
    total_vertex_weight: VertexWeight,
}

impl Graph {
    /// Builds a graph on `num_vertices` vertices from an edge list, with
    /// all vertex and edge weights equal to `1`. Duplicate edges are
    /// merged (weights summed).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>=
    /// num_vertices`, or [`GraphError::SelfLoop`] for an edge `(v, v)`.
    pub fn from_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Graph, GraphError> {
        let mut builder = crate::GraphBuilder::new(num_vertices);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// A graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: usize) -> Graph {
        Graph {
            xadj: Offsets::Narrow(vec![0; num_vertices + 1]),
            adjncy: Vec::new(),
            edge_weights: Vec::new(),
            vertex_weights: vec![1; num_vertices],
            num_edges: 0,
            total_edge_weight: 0,
            total_vertex_weight: num_vertices as VertexWeight,
        }
    }

    /// Internal constructor from finished CSR arrays. `adjncy[xadj[v]..
    /// xadj[v+1]]` must be sorted and self-loop free, with each edge
    /// mirrored. Checked by `debug_assert` only. Offsets are compacted
    /// to `u32` when they fit.
    pub(crate) fn from_csr(
        xadj: Vec<usize>,
        adjncy: Vec<VertexId>,
        edge_weights: Vec<EdgeWeight>,
        vertex_weights: Vec<VertexWeight>,
    ) -> Graph {
        debug_assert_eq!(xadj.last().copied().unwrap_or(0), adjncy.len());
        debug_assert_eq!(adjncy.len(), edge_weights.len());
        debug_assert_eq!(xadj.len(), vertex_weights.len() + 1);
        let num_edges = adjncy.len() / 2;
        let total_edge_weight = edge_weights.iter().sum::<EdgeWeight>() / 2;
        let total_vertex_weight = vertex_weights.iter().sum();
        let g = Graph {
            xadj: Offsets::from_wide(xadj),
            adjncy,
            edge_weights,
            vertex_weights,
            num_edges,
            total_edge_weight,
            total_vertex_weight,
        };
        debug_assert!(g.check_invariants());
        g
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) -> bool {
        for v in 0..self.num_vertices() {
            let adj = self.neighbors(v as VertexId);
            if !adj.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if adj.contains(&(v as VertexId)) {
                return false;
            }
            for (&u, &w) in adj.iter().zip(self.neighbor_weights(v as VertexId)) {
                if self.edge_weight(u, v as VertexId) != Some(w) {
                    return false;
                }
            }
        }
        true
    }

    #[cfg(not(debug_assertions))]
    #[allow(dead_code)]
    fn check_invariants(&self) -> bool {
        true
    }

    /// The half-open range of adjacency indices belonging to vertex `v`.
    #[inline]
    fn span(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.xadj.get(v), self.xadj.get(v + 1))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Whether the CSR offset array is stored in its compact `u32` form
    /// (true whenever the directed adjacency length fits in `u32`; the
    /// wide `usize` fallback covers the rest).
    pub fn uses_compact_offsets(&self) -> bool {
        self.xadj.is_narrow()
    }

    /// Number of distinct undirected edges (multiplicities not counted;
    /// see [`total_edge_weight`](Graph::total_edge_weight) for the
    /// weighted count).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of the weights of all undirected edges. Equals
    /// [`num_edges`](Graph::num_edges) for simple unit-weight graphs.
    #[inline]
    pub fn total_edge_weight(&self) -> EdgeWeight {
        self.total_edge_weight
    }

    /// Sum of all vertex weights. Equals
    /// [`num_vertices`](Graph::num_vertices) for unit-weight graphs.
    #[inline]
    pub fn total_vertex_weight(&self) -> VertexWeight {
        self.total_vertex_weight
    }

    /// Number of distinct neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (lo, hi) = self.span(v);
        hi - lo
    }

    /// Sum of the weights of edges incident to `v` (the degree in the
    /// original graph for contracted graphs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn weighted_degree(&self, v: VertexId) -> EdgeWeight {
        let (lo, hi) = self.span(v);
        self.edge_weights[lo..hi].iter().sum()
    }

    /// The weight of vertex `v` (`1` for uncontracted graphs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn vertex_weight(&self, v: VertexId) -> VertexWeight {
        self.vertex_weights[v as usize]
    }

    /// The sorted slice of neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = self.span(v);
        &self.adjncy[lo..hi]
    }

    /// Edge weights parallel to [`neighbors`](Graph::neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[EdgeWeight] {
        let (lo, hi) = self.span(v);
        &self.edge_weights[lo..hi]
    }

    /// Iterates over `(neighbor, edge_weight)` pairs of `v` in neighbor
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_weighted(&self, v: VertexId) -> NeighborIter<'_> {
        let (lo, hi) = self.span(v);
        NeighborIter {
            adjncy: self.adjncy[lo..hi].iter(),
            weights: self.edge_weights[lo..hi].iter(),
        }
    }

    /// Whether the edge `{u, v}` exists. `O(log degree(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The weight of edge `{u, v}`, or `None` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<EdgeWeight> {
        let base = self.xadj.get(u as usize);
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_weights[base + i])
    }

    /// Iterates over all undirected edges as `(u, v, weight)` with
    /// `u < v`, in lexicographic order.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Iterates over all vertex ids `0..num_vertices()`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// `2·|E| / |V|` counting edge multiplicities, the quantity the
    /// paper's observations are parameterized by. Zero for the empty
    /// graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.total_edge_weight as f64 / self.num_vertices() as f64
        }
    }

    /// If every vertex has the same (unweighted) degree `d`, returns
    /// `Some(d)`.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.num_vertices() == 0 {
            return None;
        }
        let d = self.degree(0);
        self.vertices().all(|v| self.degree(v) == d).then_some(d)
    }

    /// Whether all vertex and edge weights are `1` (i.e. the graph is an
    /// ordinary simple graph rather than a contracted multigraph).
    pub fn is_unit_weighted(&self) -> bool {
        self.vertex_weights.iter().all(|&w| w == 1) && self.edge_weights.iter().all(|&w| w == 1)
    }
}

/// Iterator over the `(neighbor, weight)` pairs of one vertex.
/// Created by [`Graph::neighbors_weighted`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    adjncy: std::slice::Iter<'a, VertexId>,
    weights: std::slice::Iter<'a, EdgeWeight>,
}

impl Iterator for NeighborIter<'_> {
    type Item = (VertexId, EdgeWeight);

    fn next(&mut self) -> Option<Self::Item> {
        Some((*self.adjncy.next()?, *self.weights.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.adjncy.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Iterator over all undirected edges `(u, v, weight)` with `u < v`.
/// Created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: usize,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId, EdgeWeight);

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.graph;
        while self.u < g.num_vertices() {
            if self.idx >= g.xadj.get(self.u + 1) {
                self.u += 1;
                if self.u < g.num_vertices() {
                    self.idx = g.xadj.get(self.u);
                }
                continue;
            }
            let v = g.adjncy[self.idx];
            let w = g.edge_weights[self.idx];
            self.idx += 1;
            if (self.u as VertexId) < v {
                return Some((self.u as VertexId, v, w));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_edge_weight(), 0);
        assert_eq!(g.total_vertex_weight(), 5);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn path_degrees() {
        let g = path4();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(2, 1), (2, 3), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn has_edge_and_weight() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.total_edge_weight(), 3);
        assert!(!g.is_unit_weighted());
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, &[(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, &[(0, 3)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            }
        );
    }

    #[test]
    fn edges_iterator_lexicographic() {
        let g = Graph::from_edges(4, &[(3, 2), (0, 1), (1, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (1, 3, 1), (2, 3, 1)]);
    }

    #[test]
    fn edges_iterator_counts_each_edge_once() {
        let g = path4();
        assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn average_degree_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn not_regular() {
        assert_eq!(path4().regular_degree(), None);
    }

    #[test]
    fn neighbors_weighted_pairs() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (0, 2)]).unwrap();
        let pairs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 1), (2, 2)]);
        assert_eq!(g.weighted_degree(0), 3);
    }

    #[test]
    fn unit_weighted_simple_graph() {
        assert!(path4().is_unit_weighted());
    }

    #[test]
    fn clone_and_eq() {
        let g = path4();
        let h = g.clone();
        assert_eq!(g, h);
    }

    #[test]
    fn vertices_range() {
        let g = path4();
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn small_graphs_use_compact_offsets() {
        assert!(path4().uses_compact_offsets());
        assert!(Graph::empty(3).uses_compact_offsets());
    }

    #[test]
    fn offsets_widen_when_out_of_u32_range() {
        let wide = Offsets::from_wide(vec![0, u32::MAX as usize + 1]);
        assert!(!wide.is_narrow());
        assert_eq!(wide.get(1), u32::MAX as usize + 1);
    }

    #[test]
    fn offsets_compare_by_value_across_representations() {
        let narrow = Offsets::from_wide(vec![0, 2, 4]);
        let wide = Offsets::Wide(vec![0, 2, 4]);
        assert!(narrow.is_narrow());
        assert_eq!(narrow, wide);
        assert_ne!(narrow, Offsets::Wide(vec![0, 2, 5]));
    }
}
