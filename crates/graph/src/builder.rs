use crate::{EdgeWeight, Graph, GraphError, VertexId, VertexWeight};

/// Incremental construction of a [`Graph`].
///
/// Edges may be added in any order and in both orientations; duplicates
/// are merged by summing weights at [`build`](GraphBuilder::build) time.
/// Self loops are rejected eagerly.
///
/// # Example
///
/// ```
/// use bisect_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_weighted_edge(1, 2, 5).unwrap();
/// b.set_vertex_weight(2, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_weight(1, 2), Some(5));
/// assert_eq!(g.vertex_weight(2), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, EdgeWeight)>,
    vertex_weights: Vec<VertexWeight>,
}

impl GraphBuilder {
    /// A builder for a graph on `num_vertices` vertices with no edges
    /// and unit vertex weights.
    pub fn new(num_vertices: usize) -> GraphBuilder {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            vertex_weights: vec![1; num_vertices],
        }
    }

    /// Pre-allocates space for `additional` more edges.
    pub fn reserve_edges(&mut self, additional: usize) -> &mut GraphBuilder {
        self.edges.reserve(additional);
        self
    }

    /// Number of vertices of the graph being built.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge records added so far (duplicates not yet merged).
    pub fn num_edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight 1.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`;
    /// [`GraphError::VertexOutOfRange`] if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut GraphBuilder, GraphError> {
        self.add_weighted_edge(u, v, 1)
    }

    /// Adds the undirected edge `{u, v}` with the given weight
    /// (multiplicity).
    ///
    /// # Errors
    ///
    /// As [`add_edge`](GraphBuilder::add_edge), plus
    /// [`GraphError::ZeroWeight`] if `weight == 0`.
    pub fn add_weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: EdgeWeight,
    ) -> Result<&mut GraphBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, weight));
        Ok(self)
    }

    /// Sets the weight of vertex `v` (default 1).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if `v` is out of range;
    /// [`GraphError::ZeroWeight`] if `weight == 0`.
    pub fn set_vertex_weight(
        &mut self,
        v: VertexId,
        weight: VertexWeight,
    ) -> Result<&mut GraphBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        self.check_vertex(v)?;
        self.vertex_weights[v as usize] = weight;
        Ok(self)
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Finalizes the CSR arrays, merging duplicate edges, and returns the
    /// graph. Runs in `O(V + E log E)`.
    pub fn build(mut self) -> Graph {
        // Sort edge records lexicographically, then merge duplicates.
        self.edges.sort_unstable();
        let mut merged: Vec<(VertexId, VertexId, EdgeWeight)> =
            Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match merged.last_mut() {
                Some(&mut (pu, pv, ref mut pw)) if pu == u && pv == v => *pw += w,
                _ => merged.push((u, v, w)),
            }
        }

        let n = self.num_vertices;
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut cursor = xadj.clone();
        let mut adjncy = vec![0 as VertexId; xadj[n]];
        let mut edge_weights = vec![0 as EdgeWeight; xadj[n]];
        // Insert both directions. Because `merged` is sorted by (u, v)
        // with u < v, each vertex's out-entries are appended in
        // increasing neighbor order for the "v" direction but the "u"
        // mirrors need one more ordering argument: for a fixed vertex x,
        // entries with neighbor < x come from records (nbr, x) and
        // entries with neighbor > x come from records (x, nbr); both
        // groups arrive in increasing neighbor order and every
        // smaller-neighbor record sorts before every larger-neighbor
        // record, so each adjacency list ends up sorted.
        for &(u, v, w) in &merged {
            adjncy[cursor[u as usize]] = v;
            edge_weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            edge_weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // The interleaving above does not by itself guarantee sortedness
        // of each list (mirror entries for v arrive keyed by u order),
        // so sort each adjacency slice with its weights. One scratch
        // buffer, sized to the maximum degree, serves every vertex.
        let mut pairs: Vec<(VertexId, EdgeWeight)> =
            Vec::with_capacity(degree.iter().copied().max().unwrap_or(0));
        for v in 0..n {
            let lo = xadj[v];
            let hi = xadj[v + 1];
            if adjncy[lo..hi].windows(2).all(|p| p[0] < p[1]) {
                continue;
            }
            pairs.clear();
            pairs.extend(
                adjncy[lo..hi]
                    .iter()
                    .copied()
                    .zip(edge_weights[lo..hi].iter().copied()),
            );
            pairs.sort_unstable_by_key(|&(nbr, _)| nbr);
            for (i, &(nbr, w)) in pairs.iter().enumerate() {
                adjncy[lo + i] = nbr;
                edge_weights[lo + i] = w;
            }
        }
        Graph::from_csr(xadj, adjncy, edge_weights, self.vertex_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn merges_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn weighted_edges_sum() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 3).unwrap();
        b.add_weighted_edge(1, 0, 4).unwrap();
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_weighted_edge(0, 1, 0).unwrap_err(),
            GraphError::ZeroWeight
        );
        assert_eq!(
            b.set_vertex_weight(0, 0).unwrap_err(),
            GraphError::ZeroWeight
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 2).is_err());
        assert!(b.set_vertex_weight(5, 1).is_err());
    }

    #[test]
    fn vertex_weights_preserved() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(1, 7).unwrap();
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 1);
        assert_eq!(g.vertex_weight(1), 7);
        assert_eq!(g.total_vertex_weight(), 9);
    }

    #[test]
    fn adjacency_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(5, 0), (0, 3), (2, 0), (0, 1), (4, 0)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn chaining_api() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.num_edge_records(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn larger_merge_correctness() {
        // Complete graph K5 added with every edge twice.
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
            assert_eq!(g.weighted_degree(v), 8);
        }
    }
}
