use crate::{EdgeWeight, Graph, GraphError, VertexId, VertexWeight};

/// Incremental construction of a [`Graph`].
///
/// Edges may be added in any order and in both orientations; duplicates
/// are merged by summing weights at [`build`](GraphBuilder::build) time.
/// Self loops are rejected eagerly.
///
/// # Example
///
/// ```
/// use bisect_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_weighted_edge(1, 2, 5).unwrap();
/// b.set_vertex_weight(2, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_weight(1, 2), Some(5));
/// assert_eq!(g.vertex_weight(2), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, EdgeWeight)>,
    vertex_weights: Vec<VertexWeight>,
}

impl GraphBuilder {
    /// A builder for a graph on `num_vertices` vertices with no edges
    /// and unit vertex weights.
    pub fn new(num_vertices: usize) -> GraphBuilder {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            vertex_weights: vec![1; num_vertices],
        }
    }

    /// Pre-allocates space for `additional` more edges.
    pub fn reserve_edges(&mut self, additional: usize) -> &mut GraphBuilder {
        self.edges.reserve(additional);
        self
    }

    /// Number of vertices of the graph being built.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge records added so far (duplicates not yet merged).
    pub fn num_edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight 1.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`;
    /// [`GraphError::VertexOutOfRange`] if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut GraphBuilder, GraphError> {
        self.add_weighted_edge(u, v, 1)
    }

    /// Adds the undirected edge `{u, v}` with the given weight
    /// (multiplicity).
    ///
    /// # Errors
    ///
    /// As [`add_edge`](GraphBuilder::add_edge), plus
    /// [`GraphError::ZeroWeight`] if `weight == 0`.
    pub fn add_weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: EdgeWeight,
    ) -> Result<&mut GraphBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, weight));
        Ok(self)
    }

    /// Sets the weight of vertex `v` (default 1).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if `v` is out of range;
    /// [`GraphError::ZeroWeight`] if `weight == 0`.
    pub fn set_vertex_weight(
        &mut self,
        v: VertexId,
        weight: VertexWeight,
    ) -> Result<&mut GraphBuilder, GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        self.check_vertex(v)?;
        self.vertex_weights[v as usize] = weight;
        Ok(self)
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Finalizes the CSR arrays, merging duplicate edges, and returns the
    /// graph. Runs in `O(V + E log E)`.
    pub fn build(mut self) -> Graph {
        // Sort edge records lexicographically, then merge duplicates.
        self.edges.sort_unstable();
        let mut merged: Vec<(VertexId, VertexId, EdgeWeight)> =
            Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match merged.last_mut() {
                Some(&mut (pu, pv, ref mut pw)) if pu == u && pv == v => *pw += w,
                _ => merged.push((u, v, w)),
            }
        }

        let n = self.num_vertices;
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut cursor = xadj.clone();
        let mut adjncy = vec![0 as VertexId; xadj[n]];
        let mut edge_weights = vec![0 as EdgeWeight; xadj[n]];
        // Insert both directions. Because `merged` is sorted by (u, v)
        // with u < v, each vertex's out-entries are appended in
        // increasing neighbor order for the "v" direction but the "u"
        // mirrors need one more ordering argument: for a fixed vertex x,
        // entries with neighbor < x come from records (nbr, x) and
        // entries with neighbor > x come from records (x, nbr); both
        // groups arrive in increasing neighbor order and every
        // smaller-neighbor record sorts before every larger-neighbor
        // record, so each adjacency list ends up sorted.
        for &(u, v, w) in &merged {
            adjncy[cursor[u as usize]] = v;
            edge_weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            edge_weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // The interleaving above does not by itself guarantee sortedness
        // of each list (mirror entries for v arrive keyed by u order),
        // so sort each adjacency slice with its weights. One scratch
        // buffer, sized to the maximum degree, serves every vertex.
        let mut pairs: Vec<(VertexId, EdgeWeight)> =
            Vec::with_capacity(degree.iter().copied().max().unwrap_or(0));
        for v in 0..n {
            let lo = xadj[v];
            let hi = xadj[v + 1];
            if adjncy[lo..hi].windows(2).all(|p| p[0] < p[1]) {
                continue;
            }
            pairs.clear();
            pairs.extend(
                adjncy[lo..hi]
                    .iter()
                    .copied()
                    .zip(edge_weights[lo..hi].iter().copied()),
            );
            pairs.sort_unstable_by_key(|&(nbr, _)| nbr);
            for (i, &(nbr, w)) in pairs.iter().enumerate() {
                adjncy[lo + i] = nbr;
                edge_weights[lo + i] = w;
            }
        }
        Graph::from_csr(xadj, adjncy, edge_weights, self.vertex_weights)
    }

    /// Builds a unit-vertex-weight graph without materializing an edge
    /// list: `emit` is invoked twice with an [`EdgeStream`] sink and must
    /// produce the *identical* edge sequence both times (re-run a cloned
    /// RNG, or re-scan the same staged arrays). The first pass counts
    /// endpoint slots, the second writes them straight into the CSR
    /// arrays (a counting sort by source vertex), after which each
    /// adjacency list is sorted and parallel edges are merged in place.
    ///
    /// Peak memory is the final CSR arrays plus `O(V)` counters — about
    /// half the edge-list path, which holds the `(u, v, w)` records and
    /// the CSR arrays simultaneously. The result is identical to adding
    /// the same edges to a [`GraphBuilder`] and calling
    /// [`build`](GraphBuilder::build) (property-tested).
    ///
    /// # Errors
    ///
    /// Propagates per-edge errors from the sink
    /// ([`GraphError::SelfLoop`], [`GraphError::VertexOutOfRange`],
    /// [`GraphError::ZeroWeight`]) and returns
    /// [`GraphError::StreamMismatch`] if the two passes disagree.
    pub fn stream<F>(num_vertices: usize, mut emit: F) -> Result<Graph, GraphError>
    where
        F: FnMut(&mut EdgeStream<'_>) -> Result<(), GraphError>,
    {
        let n = num_vertices;
        let mut degree = vec![0usize; n];
        let counted = {
            let mut sink = EdgeStream {
                num_vertices: n,
                records: 0,
                mode: StreamMode::Count {
                    degree: &mut degree,
                },
            };
            emit(&mut sink)?;
            sink.records
        };
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let total = xadj[n];
        let mut adjncy = vec![0 as VertexId; total];
        let mut edge_weights = vec![0 as EdgeWeight; total];
        let mut cursor: Vec<usize> = xadj[..n].to_vec();
        let emitted = {
            let mut sink = EdgeStream {
                num_vertices: n,
                records: 0,
                mode: StreamMode::Fill {
                    xadj: &xadj,
                    cursor: &mut cursor,
                    adjncy: &mut adjncy,
                    edge_weights: &mut edge_weights,
                },
            };
            emit(&mut sink)?;
            sink.records
        };
        if emitted != counted || cursor.iter().zip(&xadj[1..]).any(|(&c, &end)| c != end) {
            return Err(GraphError::StreamMismatch { counted, emitted });
        }
        // Sort each adjacency list, merging parallel edges; the merged
        // lists are compacted toward the front of the same arrays (the
        // write cursor never overtakes the read range because merging
        // only shrinks lists). One scratch buffer serves every vertex.
        let mut pairs: Vec<(VertexId, EdgeWeight)> =
            Vec::with_capacity(degree.iter().copied().max().unwrap_or(0));
        let mut new_xadj = vec![0usize; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let (lo, hi) = (xadj[v], xadj[v + 1]);
            let start = write;
            pairs.clear();
            pairs.extend(
                adjncy[lo..hi]
                    .iter()
                    .copied()
                    .zip(edge_weights[lo..hi].iter().copied()),
            );
            pairs.sort_unstable_by_key(|&(nbr, _)| nbr);
            for &(nbr, w) in &pairs {
                if write > start && adjncy[write - 1] == nbr {
                    edge_weights[write - 1] += w;
                } else {
                    adjncy[write] = nbr;
                    edge_weights[write] = w;
                    write += 1;
                }
            }
            new_xadj[v + 1] = write;
        }
        adjncy.truncate(write);
        edge_weights.truncate(write);
        Ok(Graph::from_csr(new_xadj, adjncy, edge_weights, vec![1; n]))
    }
}

/// The edge sink handed to the closure of [`GraphBuilder::stream`].
/// Validates each edge exactly as [`GraphBuilder::add_weighted_edge`]
/// does, so both passes fail identically on bad input.
#[derive(Debug)]
pub struct EdgeStream<'a> {
    num_vertices: usize,
    records: usize,
    mode: StreamMode<'a>,
}

#[derive(Debug)]
enum StreamMode<'a> {
    Count {
        degree: &'a mut [usize],
    },
    Fill {
        xadj: &'a [usize],
        cursor: &'a mut [usize],
        adjncy: &'a mut [VertexId],
        edge_weights: &'a mut [EdgeWeight],
    },
}

impl EdgeStream<'_> {
    /// Emits the undirected edge `{u, v}` with weight 1.
    ///
    /// # Errors
    ///
    /// As [`EdgeStream::weighted_edge`].
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.weighted_edge(u, v, 1)
    }

    /// Emits the undirected edge `{u, v}` with the given weight.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`], [`GraphError::VertexOutOfRange`], or
    /// [`GraphError::ZeroWeight`] as for
    /// [`GraphBuilder::add_weighted_edge`];
    /// [`GraphError::StreamMismatch`] if the filling pass emits more
    /// edges at some vertex than the counting pass declared.
    pub fn weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: EdgeWeight,
    ) -> Result<(), GraphError> {
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        for endpoint in [u, v] {
            if endpoint as usize >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: endpoint as u64,
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.records += 1;
        match &mut self.mode {
            StreamMode::Count { degree } => {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
            }
            StreamMode::Fill {
                xadj,
                cursor,
                adjncy,
                edge_weights,
            } => {
                for (a, b) in [(u, v), (v, u)] {
                    let slot = cursor[a as usize];
                    if slot >= xadj[a as usize + 1] {
                        return Err(GraphError::StreamMismatch {
                            counted: xadj[a as usize + 1] - xadj[a as usize],
                            emitted: slot + 1 - xadj[a as usize],
                        });
                    }
                    adjncy[slot] = b;
                    edge_weights[slot] = weight;
                    cursor[a as usize] = slot + 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn merges_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn weighted_edges_sum() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 3).unwrap();
        b.add_weighted_edge(1, 0, 4).unwrap();
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_weighted_edge(0, 1, 0).unwrap_err(),
            GraphError::ZeroWeight
        );
        assert_eq!(
            b.set_vertex_weight(0, 0).unwrap_err(),
            GraphError::ZeroWeight
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 2).is_err());
        assert!(b.set_vertex_weight(5, 1).is_err());
    }

    #[test]
    fn vertex_weights_preserved() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(1, 7).unwrap();
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 1);
        assert_eq!(g.vertex_weight(1), 7);
        assert_eq!(g.total_vertex_weight(), 9);
    }

    #[test]
    fn adjacency_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(5, 0), (0, 3), (2, 0), (0, 1), (4, 0)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn chaining_api() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.num_edge_records(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn stream_matches_edge_list_build() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (3, 1), (0, 3), (1, 0)];
        let mut b = GraphBuilder::new(4);
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let via_list = b.build();
        let via_stream = GraphBuilder::stream(4, |sink| {
            for &(u, v) in &edges {
                sink.edge(u, v)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(via_list, via_stream);
        assert_eq!(via_stream.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn stream_weighted_edges_merge() {
        let g = GraphBuilder::stream(2, |sink| {
            sink.weighted_edge(0, 1, 3)?;
            sink.weighted_edge(1, 0, 4)
        })
        .unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn stream_empty() {
        let g = GraphBuilder::stream(3, |_| Ok(())).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn stream_rejects_bad_edges() {
        assert!(matches!(
            GraphBuilder::stream(3, |sink| sink.edge(1, 1)),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(GraphBuilder::stream(3, |sink| sink.edge(0, 3)).is_err());
        assert_eq!(
            GraphBuilder::stream(3, |sink| sink.weighted_edge(0, 1, 0)),
            Err(GraphError::ZeroWeight)
        );
    }

    #[test]
    fn stream_detects_mismatched_passes() {
        let mut pass = 0;
        let err = GraphBuilder::stream(4, |sink| {
            pass += 1;
            sink.edge(0, 1)?;
            if pass > 1 {
                sink.edge(2, 3)?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::StreamMismatch { .. }));
    }

    #[test]
    fn larger_merge_correctness() {
        // Complete graph K5 added with every edge twice.
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
            assert_eq!(g.weighted_degree(v), 8);
        }
    }
}
