//! Integration guarantees of the hypergraph (netlist) pipeline:
//! incremental net-cut bookkeeping must agree with brute-force
//! recounts under arbitrary move sequences, the native net cut is
//! sandwiched by its clique-expansion counterparts, and the recursive
//! placement protocol is bit-identical at every thread count.

use bisect_core::netlist::{recursive_placement, NetlistBisection, NetlistPipeline};
use bisect_core::partition::Bisection;
use bisect_core::workspace::Workspace;
use bisect_gen::netlist::{sample, RentNetlistParams};
use bisect_gen::rng::{LaggedFibonacci, SeedSequence};
use bisect_graph::hypergraph::Netlist;
use proptest::prelude::*;
use rand::SeedableRng;

/// A small Rent-style netlist for the given seed.
fn rent_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
    let params =
        RentNetlistParams::new(cells, nets, 5, 2.0, 0.3).expect("feasible test parameters");
    sample(&mut LaggedFibonacci::seed_from_u64(seed), &params)
}

/// Brute-force net cut: one full sweep over every net's pins.
fn brute_force_net_cut(nl: &Netlist, sides: &[bool]) -> u64 {
    nl.net_ids()
        .map(|n| {
            let pins = nl.pins(n);
            let first = sides[pins[0] as usize];
            if pins.iter().any(|&p| sides[p as usize] != first) {
                nl.net_weight(n)
            } else {
                0
            }
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The incremental per-net pin-count bookkeeping of
    /// [`NetlistBisection::move_cell`] must agree with a brute-force
    /// recount after *every* prefix of an arbitrary move sequence —
    /// including unbalanced states mid-sequence.
    #[test]
    fn incremental_net_cut_matches_brute_force_after_arbitrary_moves(
        cells in 16usize..=48,
        nets in 20usize..=64,
        seed in 0u64..500,
        moves in proptest::collection::vec(0usize..48, 1..40),
    ) {
        let nl = rent_netlist(cells, nets, seed);
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0x5eed);
        let mut p = NetlistBisection::random_balanced(&nl, &mut rng);
        prop_assert_eq!(p.cut(), brute_force_net_cut(&nl, p.sides()));
        for m in moves {
            let c = (m % cells) as u32;
            p.move_cell(&nl, c);
            prop_assert_eq!(p.cut(), brute_force_net_cut(&nl, p.sides()));
            prop_assert_eq!(p.cut(), p.recompute_cut(&nl));
        }
    }

    /// Clique-expansion-vs-native comparison: for the bisection the
    /// native multilevel pipeline produces, the net cut is bounded
    /// above by the clique-expansion edge cut of the *same* sides
    /// (every cut net contributes at least one clique edge), which in
    /// turn is bounded by the worst-case ⌊k/2⌋·⌈k/2⌉ overcount the
    /// clique approximation can charge a cut k-pin net.
    #[test]
    fn native_net_cut_is_sandwiched_by_the_clique_expansion(
        cells in 24usize..=64,
        nets in 30usize..=90,
        seed in 0u64..500,
    ) {
        let nl = rent_netlist(cells, nets, seed);
        let pipeline = NetlistPipeline::multilevel_fm();
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0xb15ec7);
        let p = pipeline.bisect(&nl, &mut rng);
        prop_assert!(p.is_balanced(&nl));
        let net_cut = p.cut();
        prop_assert_eq!(net_cut, brute_force_net_cut(&nl, p.sides()));

        let clique = Bisection::from_sides(&nl.to_clique_graph(), p.sides().to_vec())
            .expect("side vector matches the clique graph");
        let clique_cut = clique.cut();
        let worst_case: u64 = nl
            .net_ids()
            .map(|n| {
                let pins = nl.pins(n);
                let first = p.sides()[pins[0] as usize];
                if pins.iter().any(|&c| p.sides()[c as usize] != first) {
                    let k = pins.len() as u64;
                    nl.net_weight(n) * (k / 2) * k.div_ceil(2)
                } else {
                    0
                }
            })
            .sum();
        prop_assert!(net_cut <= clique_cut, "net {} > clique {}", net_cut, clique_cut);
        prop_assert!(
            clique_cut <= worst_case,
            "clique {} > worst-case bound {}",
            clique_cut,
            worst_case
        );
    }

    /// The best-of-starts recursive placement protocol — per-trial seed
    /// streams, lowest-index-minimal net-cut winner — must give the
    /// same placement at 1, 2, and 4 threads.
    #[test]
    fn recursive_placement_is_thread_invariant(seed in 0u64..200) {
        let nl = rent_netlist(60, 80, seed);
        let pipeline = NetlistPipeline::multilevel_fm();
        let run = |threads: usize| {
            let seq = SeedSequence::new(seed ^ 0xfa7);
            let trials = bisect_par::par_map_with(threads, 4, |i| {
                let mut ws = Workspace::new();
                let mut rng = seq.rng(i as u64);
                recursive_placement(&pipeline, &nl, 4, &mut rng, &mut ws)
                    .expect("4 is a valid part count")
            });
            trials
                .into_iter()
                .min_by_key(|p| p.net_cut(&nl))
                .expect("at least one trial")
        };
        let serial = run(1);
        prop_assert!(serial.part_sizes().iter().all(|&s| s > 0));
        for threads in [2usize, 4] {
            prop_assert_eq!(&run(threads), &serial, "threads {}", threads);
        }
    }
}
