//! Determinism regression tests for the parallel experiment engine:
//! `run_best_of` must produce bit-identical winners (cut *and*
//! bisection) at every thread count, because each trial's randomness is
//! derived from the trial index, not from scheduling order.

use bisect_bench::profile::Profile;
use bisect_bench::runner::run_best_of_sides;
use bisect_bench::Suite;
use bisect_gen::gbreg::{self, GbregParams};
use bisect_gen::rng::LaggedFibonacci;
use rand::SeedableRng;

/// The ISSUE's reference workload: a `Gbreg(500, b, 3)` instance
/// (parity requires `n·d − b` even; with `n = 250`, `d = 3` that means
/// `b` even).
fn gbreg_500() -> bisect_graph::Graph {
    let params = GbregParams::new(500, 16, 3).expect("feasible parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(0xDAC_1989);
    gbreg::sample(&mut rng, &params).expect("construction succeeds")
}

#[test]
fn serial_and_parallel_runs_are_bit_identical_per_algorithm() {
    let g = gbreg_500();
    let suite = Suite::for_profile(&Profile::smoke());
    let starts = 4;
    let seed = 77;
    let algos: [(&str, &(dyn bisect_core::bisector::Bisector + Sync)); 2] =
        [("KL", &suite.kl), ("CKL", &suite.ckl)];
    // SA/CSA run through the same engine but are slow on 500 vertices;
    // the SA determinism path is covered by the smaller test below.
    for (name, algo) in algos {
        let serial = run_best_of_sides(algo, &g, starts, seed, 1);
        for threads in [2, 4] {
            let par = run_best_of_sides(algo, &g, starts, seed, threads);
            assert_eq!(
                par.0.cut, serial.0.cut,
                "{name} cut differs at {threads} threads"
            );
            assert_eq!(
                par.0.passes, serial.0.passes,
                "{name} passes differ at {threads} threads"
            );
            assert_eq!(
                par.1, serial.1,
                "{name} bisection differs at {threads} threads"
            );
        }
    }
}

#[test]
fn sa_family_is_bit_identical_across_thread_counts() {
    let params = GbregParams::new(120, 8, 3).expect("feasible parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(0xDAC_1990);
    let g = gbreg::sample(&mut rng, &params).expect("construction succeeds");
    let suite = Suite::for_profile(&Profile::smoke());
    let algos: [(&str, &(dyn bisect_core::bisector::Bisector + Sync)); 2] =
        [("SA", &suite.sa), ("CSA", &suite.csa)];
    for (name, algo) in algos {
        let serial = run_best_of_sides(algo, &g, 4, 91, 1);
        for threads in [2, 4] {
            let par = run_best_of_sides(algo, &g, 4, 91, threads);
            assert_eq!(
                par.0.cut, serial.0.cut,
                "{name} cut differs at {threads} threads"
            );
            assert_eq!(
                par.1, serial.1,
                "{name} bisection differs at {threads} threads"
            );
        }
    }
}

#[test]
fn composed_pipelines_are_bit_identical_across_thread_counts() {
    // Custom pipeline compositions (not just the packaged descriptors)
    // go through the same derived-seed trial engine, so they must also
    // be scheduling-independent.
    use bisect_core::kl::KernighanLin;
    use bisect_core::pipeline::{HeavyEdgeMatching, Pipeline, SpectralInit};
    let g = gbreg_500();
    let algos: [(&str, Pipeline); 3] = [
        ("ML-KL", Pipeline::multilevel(KernighanLin::new())),
        (
            "ML-KL-8",
            Pipeline::multilevel_to(KernighanLin::new(), 8).expect("8 >= 2"),
        ),
        (
            "CKL-heavy-spectral",
            Pipeline::ckl()
                .with_coarsener(HeavyEdgeMatching)
                .with_initial(SpectralInit::default()),
        ),
    ];
    for (name, algo) in &algos {
        let serial = run_best_of_sides(algo, &g, 4, 77, 1);
        for threads in [2, 4] {
            let par = run_best_of_sides(algo, &g, 4, 77, threads);
            assert_eq!(
                par.0.cut, serial.0.cut,
                "{name} cut differs at {threads} threads"
            );
            assert_eq!(
                par.0.passes, serial.0.passes,
                "{name} passes differ at {threads} threads"
            );
            assert_eq!(
                par.1, serial.1,
                "{name} bisection differs at {threads} threads"
            );
        }
    }
}

#[test]
fn suite_results_do_not_depend_on_ambient_thread_count() {
    // Suite::run fans the four algorithms out in parallel; the results
    // must still match a rerun (same seeds, arbitrary scheduling).
    let g = gbreg_500();
    let suite = Suite::for_profile(&Profile::smoke());
    let a = suite.run(&g, 2, 1234);
    let b = suite.run(&g, 2, 1234);
    for (x, y) in [(&a.0, &b.0), (&a.1, &b.1), (&a.2, &b.2), (&a.3, &b.3)] {
        assert_eq!(x.cut, y.cut);
        assert_eq!(x.passes, y.passes);
        assert_eq!(x.name, y.name);
    }
}
