//! Property tests for boundary-localized refinement (DESIGN.md §12):
//! [`BoundaryFm`] and the boundary-seeded [`ParallelFm`] mode against
//! their full-scan counterparts on random `Gnp`/`Gbreg` instances, plus
//! a brute-force cross-check of the incremental boundary set.

use bisect_core::bisector::Refiner;
use bisect_core::fm::{BoundaryFm, FiducciaMattheyses};
use bisect_core::gain_cache::GainCache;
use bisect_core::par_fm::ParallelFm;
use bisect_core::partition::Bisection;
use bisect_core::seed;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, gnp};
use bisect_graph::{Graph, VertexId};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

/// A `Gnp` instance in the paper's sparse regime (avg degree 2–6).
fn gnp_instance(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let params = gnp::GnpParams::with_average_degree(n, avg_degree).expect("valid parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    gnp::sample(&mut rng, &params)
}

/// A `Gbreg` instance with a planted cut of `b` edges.
fn gbreg_instance(n2: usize, b: usize, d: usize, seed: u64) -> Graph {
    let params = gbreg::GbregParams::new(n2, b, d).expect("valid parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    gbreg::sample(&mut rng, &params).expect("construction succeeds")
}

/// Brute-force external degree of `v`: total weight of its cut edges.
fn ext_brute(g: &Graph, p: &Bisection, v: VertexId) -> u64 {
    g.neighbors_weighted(v)
        .filter(|&(u, _)| p.side(u) != p.side(v))
        .map(|(_, w)| w)
        .sum()
}

/// Asserts the refined bisection is balanced, no worse than `before`,
/// and carries an exact cut.
fn assert_refinement_invariants(g: &Graph, before: u64, refined: &Bisection) {
    assert!(
        refined.cut() <= before,
        "cut rose {} -> {}",
        before,
        refined.cut()
    );
    assert!(refined.is_balanced(g), "refinement lost balance");
    assert_eq!(refined.cut(), refined.recompute_cut(g), "stale cached cut");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BoundaryFm is monotone, balanced, and cut-exact on sparse Gnp
    /// instances across the paper's degree range. (Quality against
    /// full-scan FM is checked in aggregate below — the two walk
    /// different pass trajectories, so per-instance dominance does not
    /// hold in either direction.)
    #[test]
    fn boundary_fm_invariants_hold_on_gnp(seed in 0u64..500, deg in 0u8..5) {
        let g = gnp_instance(60, 2.0 + f64::from(deg), seed);
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0x9e37);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let mut rng_b = LaggedFibonacci::seed_from_u64(1);
        let boundary = BoundaryFm::new().refine(&g, init, &mut rng_b);
        assert_refinement_invariants(&g, before, &boundary);
    }

    /// Same invariants on Gbreg, where a planted cut of `b` edges gives
    /// the refiner a known target to converge toward.
    #[test]
    fn boundary_fm_invariants_hold_on_gbreg(seed in 0u64..500) {
        let g = gbreg_instance(80, 8, 4, seed);
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0x51f);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let mut rng_b = LaggedFibonacci::seed_from_u64(1);
        let boundary = BoundaryFm::new().refine(&g, init, &mut rng_b);
        assert_refinement_invariants(&g, before, &boundary);
    }

    /// The incremental boundary set equals the brute-force external-
    /// degree scan after *every* accepted move of a random walk, and the
    /// cached gains stay exact throughout.
    #[test]
    fn boundary_set_matches_brute_force_scan_after_every_move(seed in 0u64..500) {
        let g = gnp_instance(40, 3.0, seed);
        let n = g.num_vertices();
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0xb0);
        let mut p = seed::random_balanced(&g, &mut rng);
        let mut cache = GainCache::default();
        cache.init(&g, &p);

        for _ in 0..60 {
            let v = (rng.next_u64() % n as u64) as VertexId;
            let gain = cache.gain(v);
            prop_assert_eq!(gain, p.gain(&g, v), "stale cached gain for {}", v);
            cache.record_move(&g, &p, v);
            p.move_vertex_with_gain(&g, v, gain);

            let mut boundary_size = 0usize;
            for u in g.vertices() {
                let ext = ext_brute(&g, &p, u);
                prop_assert_eq!(cache.ext(u), ext, "stale external degree for {}", u);
                prop_assert_eq!(
                    cache.is_boundary(u),
                    ext > 0,
                    "boundary membership of {} disagrees with brute force",
                    u
                );
                boundary_size += usize::from(ext > 0);
            }
            // Same cardinality + exact membership ⇒ no duplicates.
            prop_assert_eq!(cache.boundary().len(), boundary_size);
        }
    }

    /// The boundary-seeded parallel mode is monotone, balanced, and
    /// deterministic at a fixed thread count — repeat runs at 1 and at 4
    /// threads each reproduce themselves bit-identically.
    #[test]
    fn boundary_seeded_parallel_fm_is_deterministic_at_fixed_threads(seed in 0u64..500) {
        let g = gnp_instance(90, 3.0, seed);
        let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0x7a11);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();

        for threads in [1usize, 4] {
            let pfm = ParallelFm::new().with_threads(threads).with_boundary_seeds();
            let mut rng_a = LaggedFibonacci::seed_from_u64(1);
            let refined = pfm.refine(&g, init.clone(), &mut rng_a);
            assert_refinement_invariants(&g, before, &refined);

            let mut rng_b = LaggedFibonacci::seed_from_u64(1);
            let again = pfm.refine(&g, init.clone(), &mut rng_b);
            prop_assert_eq!(
                refined.sides(),
                again.sides(),
                "repeat run at {} threads diverged",
                threads
            );
        }
    }
}

/// Aggregate quality: over many seeded instances, boundary-seeded FM's
/// total cut stays within 5% of full-scan FM's. Per instance the two
/// land in different local optima (each wins some), but boundary
/// seeding misses no positive-gain candidate — positive gain implies
/// boundary membership — so in aggregate the quality is the same.
/// Every input is seeded, so the totals reproduce exactly.
#[test]
fn boundary_fm_quality_matches_full_scan_fm_in_aggregate() {
    for (name, is_gnp) in [("Gnp", true), ("Gbreg", false)] {
        let mut total_full = 0u64;
        let mut total_boundary = 0u64;
        for seed in 0u64..60 {
            let g = if is_gnp {
                gnp_instance(60, 3.0, seed)
            } else {
                gbreg_instance(80, 8, 4, seed)
            };
            let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0x9e37);
            let init = seed::random_balanced(&g, &mut rng);
            let mut rng_a = LaggedFibonacci::seed_from_u64(1);
            total_full += FiducciaMattheyses::new()
                .refine(&g, init.clone(), &mut rng_a)
                .cut();
            let mut rng_b = LaggedFibonacci::seed_from_u64(1);
            total_boundary += BoundaryFm::new().refine(&g, init, &mut rng_b).cut();
        }
        assert!(
            total_boundary as f64 <= total_full as f64 * 1.05,
            "{name}: boundary total {total_boundary} > 1.05 x full-scan total {total_full}"
        );
    }
}
