//! Equivalence guarantees of the pipeline refactor: the composable
//! [`Pipeline`] descriptors replaced bespoke legacy implementations
//! bit for bit, and must keep reproducing them. Golden pins lock the
//! absolute values captured from the pre-refactor tree — cut, pass
//! count, and a fingerprint of the side vector — and property tests
//! keep the best-of-starts protocol bit-identical at every thread
//! count on random `Gbreg`/`Gnp` instances, so nothing can drift
//! silently.

use bisect_bench::profile::Profile;
use bisect_bench::runner::run_best_of_sides;
use bisect_bench::Suite;
use bisect_core::bisector::Bisector;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_gen::gbreg::{self, GbregParams};
use bisect_gen::gnp::{self, GnpParams};
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::special;
use bisect_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over the side bits — the fingerprint used when the golden
/// values were captured from the pre-refactor tree.
fn sides_fingerprint(sides: &[bool]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &s in sides {
        h ^= s as u64 + 1;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Asserts the paper's best-of-starts protocol bit-identical between a
/// serial run and a parallel trial pool — same cut, same pass count,
/// same side vector.
fn assert_thread_invariant(
    pipeline: &(dyn Bisector + Sync),
    g: &Graph,
    seed: u64,
) -> Result<(), TestCaseError> {
    let (sr, ss) = run_best_of_sides(pipeline, g, 2, seed, 1);
    for threads in [2usize, 4] {
        let (pr, ps) = run_best_of_sides(pipeline, g, 2, seed, threads);
        prop_assert_eq!(
            pr.cut,
            sr.cut,
            "cut differs at {} threads ({})",
            threads,
            pipeline.name()
        );
        prop_assert_eq!(
            pr.passes,
            sr.passes,
            "passes differ at {} threads ({})",
            threads,
            pipeline.name()
        );
        prop_assert_eq!(
            ps,
            ss.clone(),
            "side vector differs at {} threads ({})",
            threads,
            pipeline.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ckl_is_thread_invariant_on_gbreg(
        half in 10usize..=30,
        b in 1usize..=4,
        d in 3usize..=4,
        seed in 0u64..1000,
    ) {
        // Parity: each side's internal degree sum `half·d − b` must be
        // even, so give `b` the parity of `half·d`.
        let b = 2 * b + (half * d) % 2;
        let params = GbregParams::new(2 * half, b, d).expect("feasible parameters");
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = gbreg::sample(&mut rng, &params).expect("construction succeeds");
        assert_thread_invariant(&Pipeline::ckl(), &g, seed)?;
    }

    #[test]
    fn csa_is_thread_invariant_on_gnp(
        half in 8usize..=16,
        degree in 2u32..=4,
        seed in 0u64..1000,
    ) {
        let params = GnpParams::with_average_degree(2 * half, degree as f64)
            .expect("feasible parameters");
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = gnp::sample(&mut rng, &params);
        assert_thread_invariant(&Pipeline::csa(), &g, seed)?;
    }
}

// ---------------------------------------------------------------------
// Golden pins: absolute values captured by running the *pre-refactor*
// legacy implementations (the bespoke compaction/multilevel/recursive
// drivers, before the engine existed) on these exact workloads. The
// pipeline must keep reproducing them bit for bit.
// ---------------------------------------------------------------------

fn gbreg_graph(n: usize, b: usize, d: usize, seed: u64) -> Graph {
    let params = GbregParams::new(n, b, d).expect("feasible parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    gbreg::sample(&mut rng, &params).expect("construction succeeds")
}

#[test]
fn golden_ckl_on_gbreg500() {
    let g = gbreg_graph(500, 16, 3, 0xDAC_1989);
    let (r, sides) = run_best_of_sides(&Pipeline::ckl(), &g, 4, 77, 1);
    assert_eq!(r.cut, 16);
    assert_eq!(r.passes, 14);
    assert_eq!(sides_fingerprint(&sides), 0x3b7164fad75fde8f);
}

#[test]
fn golden_sa_family_on_gbreg120() {
    let g = gbreg_graph(120, 8, 3, 0xDAC_1990);
    let suite = Suite::for_profile(&Profile::smoke());
    let (r, sides) = run_best_of_sides(&suite.csa, &g, 4, 91, 1);
    assert_eq!((r.cut, r.passes), (8, 227), "CSA");
    assert_eq!(sides_fingerprint(&sides), 0x672fd7132ec05c99, "CSA");
    let (r, sides) = run_best_of_sides(&suite.sa, &g, 4, 91, 1);
    assert_eq!((r.cut, r.passes), (8, 110), "SA");
    assert_eq!(sides_fingerprint(&sides), 0x672fd7132ec05c99, "SA");
}

#[test]
fn golden_multilevel_on_grid10() {
    let g = special::grid(10, 10);
    let p = Pipeline::multilevel(KernighanLin::new()).bisect(&g, &mut StdRng::seed_from_u64(1));
    assert_eq!(
        (p.cut(), sides_fingerprint(p.sides())),
        (10, 0x4d9aae4ebce23667)
    );
    let ml8 = Pipeline::multilevel_to(KernighanLin::new(), 8).expect("8 >= 2");
    let p = ml8.bisect(&g, &mut StdRng::seed_from_u64(4));
    assert_eq!(
        (p.cut(), sides_fingerprint(p.sides())),
        (10, 0xdb6617adcd90ab31)
    );
    let p =
        Pipeline::multilevel(SimulatedAnnealing::quick()).bisect(&g, &mut StdRng::seed_from_u64(9));
    assert_eq!(
        (p.cut(), sides_fingerprint(p.sides())),
        (10, 0xdb6617adcd90ab31)
    );
}

#[test]
fn golden_recursive_partition_on_grid8() {
    let g = special::grid(8, 8);
    let part = Pipeline::kl()
        .partition_into(&g, 4, &mut StdRng::seed_from_u64(3))
        .expect("4 is a power of two");
    assert_eq!(part.cut(&g), 16);
    assert_eq!(part.part_sizes(), vec![16, 16, 16, 16]);
    let mut h: u64 = 0xcbf29ce484222325;
    for &l in part.labels() {
        h ^= l as u64 + 1;
        h = h.wrapping_mul(0x100000001b3);
    }
    assert_eq!(h, 0x189326d85ea1b885);
}

#[test]
fn golden_ckl_on_edgeless_graph() {
    // The empty-matching fallback path (§V: compaction on an edgeless
    // graph degenerates to the bare refiner).
    let g = Graph::empty(8);
    let p = Pipeline::ckl().bisect(&g, &mut StdRng::seed_from_u64(3));
    assert_eq!(p.cut(), 0);
    assert_eq!(sides_fingerprint(p.sides()), 0xbf7bb3530de7b57);
}
