//! Property-based tests (proptest) on the core invariants listed in
//! DESIGN.md §6.

use bisect_core::bisector::{Bisector, Refiner};
use bisect_core::fm::FiducciaMattheyses;
use bisect_core::kl::KernighanLin;
use bisect_core::par_fm::ParallelFm;
use bisect_core::partition::{rebalance, Bisection, Side};
use bisect_core::sa::SimulatedAnnealing;
use bisect_core::seed;
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::reorder::Reordering;
use bisect_graph::{contraction, io, matching, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

/// A uniform random permutation of `0..n` (Fisher-Yates over the
/// deterministic generator, so the permutation is part of the test's
/// reproducible seed space).
fn permutation_from_seed(n: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Strategy: a random simple graph as (n, edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32).prop_filter("no self loop", |(u, v)| u != v);
            (Just(n), proptest::collection::vec(edge, 0..(3 * n)))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).expect("filtered edges are valid");
            }
            b.build()
        })
}

/// Strategy: a weighted graph (vertex weights 1-3, edge weights 1-4).
fn arb_weighted_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 1u64..=4)
                .prop_filter("no self loop", |(u, v, _)| u != v);
            (
                Just(n),
                proptest::collection::vec(edge, 0..(2 * n)),
                proptest::collection::vec(1u64..=3, n),
            )
        })
        .prop_map(|(n, edges, weights)| {
            let mut b = GraphBuilder::new(n);
            for (v, &w) in weights.iter().enumerate() {
                b.set_vertex_weight(v as VertexId, w)
                    .expect("weights positive");
            }
            for (u, v, w) in edges {
                b.add_weighted_edge(u, v, w)
                    .expect("filtered edges are valid");
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cut_is_symmetric_under_side_flip(g in arb_graph(24), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let p = seed::random_balanced(&g, &mut rng);
        let flipped: Vec<bool> = p.sides().iter().map(|s| !s).collect();
        let q = Bisection::from_sides(&g, flipped).unwrap();
        prop_assert_eq!(p.cut(), q.cut());
    }

    #[test]
    fn incremental_moves_match_recompute(g in arb_graph(20), moves in proptest::collection::vec(0u32..20, 1..30), seed in 0u64..100) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let mut p = seed::random_balanced(&g, &mut rng);
        for &m in &moves {
            let v = m % g.num_vertices() as u32;
            p.move_vertex(&g, v);
            prop_assert_eq!(p.cut(), p.recompute_cut(&g));
        }
    }

    #[test]
    fn kl_pass_never_increases_cut(g in arb_graph(24), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let mut p = seed::random_balanced(&g, &mut rng);
        let kl = KernighanLin::new();
        let before = p.cut();
        let improvement = kl.pass(&g, &mut p);
        prop_assert!(p.cut() <= before);
        prop_assert_eq!(before - p.cut(), improvement);
        prop_assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn kl_preserves_side_counts(g in arb_graph(24), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let init = seed::random_balanced(&g, &mut rng);
        let counts = (init.count(Side::A), init.count(Side::B));
        let refined = KernighanLin::new().refine(&g, init, &mut rng);
        prop_assert_eq!((refined.count(Side::A), refined.count(Side::B)), counts);
    }

    #[test]
    fn fm_refine_is_monotone_and_balanced(g in arb_graph(24), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let refined = FiducciaMattheyses::new().refine(&g, init, &mut rng);
        prop_assert!(refined.cut() <= before);
        prop_assert!(refined.is_balanced(&g));
        prop_assert_eq!(refined.cut(), refined.recompute_cut(&g));
    }

    #[test]
    fn contraction_preserves_projected_cut(g in arb_weighted_graph(20), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let m = matching::random_maximal(&g, &mut rng);
        let c = contraction::contract_matching(&g, &m);
        let coarse = c.coarse();
        let coarse_p = seed::weight_balanced_random(coarse, &mut rng);
        let fine_p = Bisection::from_sides(&g, c.project_sides(coarse_p.sides())).unwrap();
        // Weighted coarse cut equals the fine cut of the projection.
        prop_assert_eq!(coarse_p.cut(), fine_p.cut());
        // Weight balance projects exactly.
        prop_assert_eq!(coarse_p.weight(Side::A), fine_p.weight(Side::A));
        // Total vertex weight is preserved by contraction.
        prop_assert_eq!(coarse.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn matching_is_maximal_and_disjoint(g in arb_graph(30), seed in 0u64..1000) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let m = matching::random_maximal(&g, &mut rng);
        prop_assert!(m.is_maximal(&g));
        prop_assert!(m.respects_graph(&g));
        for &(u, v) in m.pairs() {
            prop_assert_eq!(m.mate(u), Some(v));
            prop_assert_eq!(m.mate(v), Some(u));
        }
    }

    #[test]
    fn rebalance_always_balances(g in arb_graph(20), bits in proptest::collection::vec(any::<bool>(), 20)) {
        let sides: Vec<bool> = (0..g.num_vertices()).map(|v| bits[v % bits.len()]).collect();
        let mut p = Bisection::from_sides(&g, sides).unwrap();
        rebalance(&g, &mut p);
        prop_assert!(p.is_balanced(&g));
        prop_assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn metis_roundtrip(g in arb_weighted_graph(16)) {
        let mut buffer = Vec::new();
        io::write_metis(&g, &mut buffer).unwrap();
        let h = io::read_metis(buffer.as_slice()).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    // arb_graph, not arb_weighted_graph: the edge-list format carries
    // edge weights (duplicate edges merge into them) but not vertex
    // weights.
    fn edge_list_roundtrip(g in arb_graph(16)) {
        let mut buffer = Vec::new();
        io::write_edge_list(&g, &mut buffer).unwrap();
        let h = io::read_edge_list(buffer.as_slice(), Some(g.num_vertices())).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn gbreg_samples_satisfy_model(n_half in 4usize..20, d in 2usize..5, b_raw in 0usize..10, seed in 0u64..100) {
        prop_assume!(d < n_half);
        let nd = n_half * d;
        let b = if (nd.wrapping_sub(b_raw)) % 2 != 0 { b_raw + 1 } else { b_raw };
        prop_assume!(b <= nd && b <= n_half * n_half);
        let params = bisect_gen::gbreg::GbregParams::new(2 * n_half, b, d).unwrap();
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert_eq!(bisect_gen::gbreg::planted_cut(&g), b as u64);
        prop_assert!(g.is_unit_weighted());
    }

    #[test]
    fn g2set_exact_cross_count(n_half in 3usize..20, bis in 0usize..9, seed in 0u64..100) {
        prop_assume!(bis <= n_half * n_half);
        let params = bisect_gen::g2set::G2setParams::new(2 * n_half, 0.3, 0.3, bis).unwrap();
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = bisect_gen::g2set::sample(&mut rng, &params);
        let planted = Bisection::planted(&g);
        prop_assert_eq!(planted.cut(), bis as u64);
    }

    #[test]
    fn netlist_cut_consistent_under_moves(
        nets in proptest::collection::vec(proptest::collection::vec(0u32..12, 2..5), 1..10),
        moves in proptest::collection::vec(0u32..12, 1..20),
        seed in 0u64..100,
    ) {
        use bisect_core::netlist::NetlistBisection;
        use bisect_graph::hypergraph::NetlistBuilder;
        let mut b = NetlistBuilder::new(12);
        for net in &nets {
            b.add_net(net).unwrap();
        }
        let nl = b.build();
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let mut p = NetlistBisection::random_balanced(&nl, &mut rng);
        for &c in &moves {
            let gain = p.gain(&nl, c);
            let before = p.cut() as i64;
            p.move_cell(&nl, c);
            prop_assert_eq!(p.cut(), p.recompute_cut(&nl));
            prop_assert_eq!(before - p.cut() as i64, gain);
        }
    }

    #[test]
    fn netlist_fm_monotone_and_balanced(
        nets in proptest::collection::vec(proptest::collection::vec(0u32..14, 2..6), 1..12),
        seed in 0u64..100,
    ) {
        use bisect_core::netlist::{NetlistBisection, NetlistFm};
        use bisect_graph::hypergraph::NetlistBuilder;
        let mut b = NetlistBuilder::new(14);
        for net in &nets {
            b.add_net(net).unwrap();
        }
        let nl = b.build();
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let init = NetlistBisection::random_balanced(&nl, &mut rng);
        let before = init.cut();
        let refined = NetlistFm::new().refine(&nl, init);
        prop_assert!(refined.cut() <= before);
        prop_assert!(refined.is_balanced(&nl));
        prop_assert_eq!(refined.cut(), refined.recompute_cut(&nl));
    }

    #[test]
    fn clique_expansion_cut_bounds_net_cut(
        nets in proptest::collection::vec(proptest::collection::vec(0u32..10, 2..5), 1..8),
        seed in 0u64..100,
    ) {
        use bisect_core::netlist::NetlistBisection;
        use bisect_graph::hypergraph::NetlistBuilder;
        let mut b = NetlistBuilder::new(10);
        for net in &nets {
            b.add_net(net).unwrap();
        }
        let nl = b.build();
        let clique = nl.to_clique_graph();
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let p = seed::random_balanced(&clique, &mut rng);
        let netp = NetlistBisection::from_sides(&nl, p.sides().to_vec()).unwrap();
        // A cut net contributes at least one clique edge, so the net
        // cut never exceeds the clique-edge cut.
        prop_assert!(netp.cut() <= p.cut());
    }

    #[test]
    fn kl_incremental_matches_exhaustive_reference(
        g in arb_graph(24),
        seed in 0u64..200,
    ) {
        use bisect_core::kl::PairSelection;
        let init = {
            let mut rng = LaggedFibonacci::seed_from_u64(seed);
            seed::random_balanced(&g, &mut rng)
        };
        let reference = KernighanLin::new()
            .with_pair_selection(PairSelection::Exhaustive)
            .refine_with_passes(&g, init.clone());
        let incremental = KernighanLin::new()
            .with_pair_selection(PairSelection::Incremental)
            .refine_with_passes(&g, init);
        // Bit-identical refinement, not merely an equal cut: the
        // incremental bucket scan must make the same pair choices as
        // Figure 2's exhaustive scan on every pass.
        prop_assert_eq!(incremental.1, reference.1, "pass counts differ");
        prop_assert_eq!(incremental.0, reference.0);
    }

    #[test]
    fn permutation_preserves_structure_and_cuts(
        g in arb_weighted_graph(20),
        perm_seed in 0u64..1000,
        part_seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let perm = permutation_from_seed(n, perm_seed);
        let r = Reordering::from_new_to_old(perm).unwrap();
        let h = r.apply(&g);
        // Degree sequence and weights survive relabeling vertex by
        // vertex, not merely in aggregate.
        for old in 0..n as VertexId {
            let new = r.to_new(old);
            prop_assert_eq!(g.degree(old), h.degree(new));
            prop_assert_eq!(g.vertex_weight(old), h.vertex_weight(new));
        }
        prop_assert_eq!(g.total_vertex_weight(), h.total_vertex_weight());
        // Any partition keeps its cut weight under the relabeling.
        let mut rng = LaggedFibonacci::seed_from_u64(part_seed);
        let p = seed::weight_balanced_random(&g, &mut rng);
        let q = Bisection::from_sides(&h, r.to_new_sides(p.sides())).unwrap();
        prop_assert_eq!(p.cut(), q.cut());
        // And the inverse mapping is exact: new sides -> old sides ->
        // new sides is the identity.
        let back = r.to_new_sides(&r.to_old_sides(q.sides()));
        prop_assert_eq!(back, q.sides().to_vec());
    }

    #[test]
    fn serial_bisections_map_back_exactly_through_permutations(
        g in arb_graph(20),
        perm_seed in 0u64..200,
        seed in 0u64..200,
    ) {
        // Bisect the *relabeled* graph with the pinned serial
        // algorithms, map the result back through the inverse
        // permutation, and re-verify the cut on the original graph:
        // the exact check the huge pipeline performs after BFS
        // reordering.
        let r = Reordering::from_new_to_old(
            permutation_from_seed(g.num_vertices(), perm_seed),
        ).unwrap();
        let h = r.apply(&g);
        let algos: Vec<Box<dyn Bisector>> = vec![
            Box::new(KernighanLin::new()),
            Box::new(SimulatedAnnealing::quick()),
        ];
        for algo in algos {
            let mut rng = LaggedFibonacci::seed_from_u64(seed);
            let p = algo.bisect(&h, &mut rng);
            let q = Bisection::from_sides(&g, r.to_old_sides(p.sides())).unwrap();
            prop_assert_eq!(p.cut(), q.cut(), "{} cut changed under inverse mapping", algo.name());
            prop_assert_eq!(q.cut(), q.recompute_cut(&g));
        }
    }

    #[test]
    fn streamed_build_is_identical_to_edge_list_build(
        n in 2usize..24,
        edges in proptest::collection::vec((0u32..24, 0u32..24, 1u64..=4), 0..60),
    ) {
        // Same edge multiset (duplicates merge, order arbitrary)
        // through both construction paths.
        let edges: Vec<(u32, u32, u64)> = edges
            .into_iter()
            .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
            .filter(|(u, v, _)| u != v)
            .collect();
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w).unwrap();
        }
        let listed = b.build();
        let streamed = GraphBuilder::stream(n, |sink| {
            for &(u, v, w) in &edges {
                sink.weighted_edge(u, v, w)?;
            }
            Ok(())
        }).unwrap();
        // Equality is element-wise over the CSR arrays (offsets,
        // adjacency, weights), i.e. the builds are indistinguishable.
        prop_assert_eq!(&listed, &streamed);
        for v in 0..n as VertexId {
            prop_assert_eq!(listed.neighbors(v), streamed.neighbors(v));
        }
    }

    #[test]
    fn parallel_fm_refine_is_monotone_balanced_and_thread_deterministic(
        g in arb_graph(24),
        seed in 0u64..200,
    ) {
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let init = seed::random_balanced(&g, &mut rng);
        let before = init.cut();
        let pfm = ParallelFm::new().with_threads(4);
        let refined = pfm.refine(&g, init.clone(), &mut rng);
        prop_assert!(refined.cut() <= before);
        prop_assert!(refined.is_balanced(&g));
        prop_assert_eq!(refined.cut(), refined.recompute_cut(&g));
        // Deterministic at a fixed thread count: a second run from the
        // same start produces the identical partition.
        let again = pfm.refine(&g, init, &mut rng);
        prop_assert_eq!(refined.sides(), again.sides());
    }

    #[test]
    fn bisectors_always_balanced(g in arb_graph(20), seed in 0u64..100) {
        let algos: Vec<Box<dyn Bisector>> = vec![
            Box::new(KernighanLin::new()),
            Box::new(FiducciaMattheyses::new()),
            Box::new(bisect_core::pipeline::Pipeline::ckl()),
        ];
        for algo in algos {
            let mut rng = LaggedFibonacci::seed_from_u64(seed);
            let p = algo.bisect(&g, &mut rng);
            prop_assert!(p.is_balanced(&g), "{} unbalanced", algo.name());
            prop_assert_eq!(p.cut(), p.recompute_cut(&g));
        }
    }
}
