//! Equivalence guarantees of the SA hot-loop overhaul: the cached
//! proposal-evaluation path ([`ProposalEval::Cached`] — incremental
//! gain cache, per-temperature `exp` table, monomorphized inner loops)
//! must be *bit-identical* — same cut, same side vector, same
//! temperature-step counts, same proposal counts — to the naive
//! reference path that recomputes every gain from adjacency, for both
//! move kinds, with calibrated and explicit starting temperatures, at
//! every thread count. A dyn-fallback pin additionally checks that an
//! opaque rng (no [`rand::RngCore::as_any_mut`] override) takes the
//! non-monomorphized loop and still reproduces the same results.

use bisect_bench::runner::run_best_of_sides;
use bisect_core::bisector::Bisector;
use bisect_core::sa::{MoveKind, ProposalEval, Schedule, SimulatedAnnealing};
use bisect_core::workspace::Workspace;
use bisect_gen::gbreg::{self, GbregParams};
use bisect_gen::gnp::{self, GnpParams};
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::Graph;
use proptest::prelude::*;
use rand::{Error, RngCore, SeedableRng};

/// FNV-1a over the side bits (same fingerprint as
/// `tests/pipeline_equivalence.rs`).
fn sides_fingerprint(sides: &[bool]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &s in sides {
        h ^= s as u64 + 1;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A quick schedule so the property tests stay fast; `initial` selects
/// calibration (`None`) or an explicit starting temperature.
fn quick_schedule(initial: Option<f64>) -> Schedule {
    Schedule {
        initial_temperature: initial,
        sizefactor: 4,
        cooling: 0.9,
        max_temperatures: 120,
        ..Schedule::default()
    }
}

/// Asserts the cached and naive evaluation paths bit-identical for one
/// SA configuration under the paper's best-of-starts protocol, serially
/// and with a parallel trial pool.
fn assert_eval_paths_identical(
    sa: &SimulatedAnnealing,
    g: &Graph,
    seed: u64,
) -> Result<(), TestCaseError> {
    let cached = sa.clone().with_proposal_eval(ProposalEval::Cached);
    let naive = sa.clone().with_proposal_eval(ProposalEval::Naive);
    for threads in [1usize, 4] {
        let (cr, cs) = run_best_of_sides(&cached, g, 2, seed, threads);
        let (nr, ns) = run_best_of_sides(&naive, g, 2, seed, threads);
        prop_assert_eq!(cr.cut, nr.cut, "cut differs at {} threads", threads);
        prop_assert_eq!(cr.passes, nr.passes, "passes differ at {} threads", threads);
        prop_assert_eq!(
            cr.proposals,
            nr.proposals,
            "proposals differ at {} threads",
            threads
        );
        prop_assert_eq!(cs, ns, "side vector differs at {} threads", threads);
    }
    Ok(())
}

/// Maps a proptest-drawn selector to a starting-temperature choice:
/// calibrated, hot explicit, or near-frozen explicit.
fn initial_temperature(selector: u8) -> Option<f64> {
    match selector % 3 {
        0 => None,
        1 => Some(3.0),
        _ => Some(0.25),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_matches_naive_swap_on_gbreg(
        half in 10usize..=25,
        b in 1usize..=4,
        d in 3usize..=4,
        t_sel in 0u8..3,
        seed in 0u64..1000,
    ) {
        // Parity: each side's internal degree sum `half·d − b` must be
        // even, so give `b` the parity of `half·d`.
        let b = 2 * b + (half * d) % 2;
        let params = GbregParams::new(2 * half, b, d).expect("feasible parameters");
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = gbreg::sample(&mut rng, &params).expect("construction succeeds");
        let sa = SimulatedAnnealing::new()
            .with_schedule(quick_schedule(initial_temperature(t_sel)));
        assert_eval_paths_identical(&sa, &g, seed)?;
    }

    #[test]
    fn cached_matches_naive_flip_on_gnp(
        half in 8usize..=16,
        degree in 2u32..=4,
        t_sel in 0u8..3,
        seed in 0u64..1000,
    ) {
        let params = GnpParams::with_average_degree(2 * half, degree as f64)
            .expect("feasible parameters");
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = gnp::sample(&mut rng, &params);
        let sa = SimulatedAnnealing::new()
            .with_move_kind(MoveKind::Flip { imbalance_factor: 0.05 })
            .with_schedule(quick_schedule(initial_temperature(t_sel)));
        assert_eval_paths_identical(&sa, &g, seed)?;
    }
}

// ---------------------------------------------------------------------
// Dyn-fallback pin: a generator that does *not* opt into `as_any_mut`
// must be served by the non-monomorphized loop with identical draws.
// ---------------------------------------------------------------------

/// A [`LaggedFibonacci`] hidden behind a newtype that forwards the four
/// draw methods but keeps the default `as_any_mut` (`None`), so the SA
/// dispatcher cannot recover a concrete type and falls back to the
/// `dyn`-generic loop.
struct Opaque(LaggedFibonacci);

impl RngCore for Opaque {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[test]
fn dyn_fallback_matches_monomorphized_loop() {
    let params = GbregParams::new(60, 4, 3).expect("feasible parameters");
    let mut grng = LaggedFibonacci::seed_from_u64(0xBEEF);
    let g = gbreg::sample(&mut grng, &params).expect("construction succeeds");
    for sa in [
        SimulatedAnnealing::quick(),
        SimulatedAnnealing::quick().with_move_kind(MoveKind::Flip {
            imbalance_factor: 0.05,
        }),
        SimulatedAnnealing::quick().with_proposal_eval(ProposalEval::Naive),
    ] {
        for seed in [1u64, 42, 91] {
            let mut ws = Workspace::new();
            let mut fast = LaggedFibonacci::seed_from_u64(seed);
            let direct = sa.bisect_counted(&g, &mut fast, &mut ws);
            let direct_proposals = ws.take_proposals();

            let mut slow = Opaque(LaggedFibonacci::seed_from_u64(seed));
            let opaque = sa.bisect_counted(&g, &mut slow, &mut ws);
            let opaque_proposals = ws.take_proposals();

            assert_eq!(direct.0.cut(), opaque.0.cut(), "seed {seed}");
            assert_eq!(direct.0.sides(), opaque.0.sides(), "seed {seed}");
            assert_eq!(direct.1, opaque.1, "temperature steps, seed {seed}");
            assert_eq!(direct_proposals, opaque_proposals, "proposals, seed {seed}");
            // Both generators must also have consumed identical draws.
            assert_eq!(fast, slow.0, "generator state diverged, seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Golden pin: absolute values captured from the pre-overhaul SA (naive
// evaluation, virtual per-draw dispatch, direct `exp` calls) on this
// exact workload. Both evaluation paths must keep reproducing them.
// ---------------------------------------------------------------------

#[test]
fn golden_sa_eval_paths_on_gbreg120() {
    let params = GbregParams::new(120, 8, 3).expect("feasible parameters");
    let mut rng = LaggedFibonacci::seed_from_u64(0xDAC_1990);
    let g = gbreg::sample(&mut rng, &params).expect("construction succeeds");
    let sa = SimulatedAnnealing::new().with_schedule(quick_schedule(None));
    for eval in [ProposalEval::Cached, ProposalEval::Naive] {
        let sa = sa.clone().with_proposal_eval(eval);
        let (r, sides) = run_best_of_sides(&sa, &g, 4, 91, 1);
        assert_eq!((r.cut, r.passes), (8, 110), "{eval:?}");
        assert_eq!(sides_fingerprint(&sides), 0x672fd7132ec05c99, "{eval:?}");
        assert!(r.proposals > 0, "{eval:?}");
    }
}
