//! The paper's five observations (§VI), asserted as directional claims
//! on moderate instances. Thresholds are deliberately loose — the
//! precise magnitudes are measured in EXPERIMENTS.md — but the *shape*
//! (who wins, roughly by how much) must hold for fixed seeds.

use bisect_core::bisector::best_of;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, special};
use rand::SeedableRng;
use std::time::Instant;

fn sa() -> SimulatedAnnealing {
    SimulatedAnnealing::quick()
}

/// Observation 1: both algorithms do much better on degree-4 `Gbreg`
/// than degree-3; at degree 4 KL finds the planted bisection.
#[test]
fn observation1_degree_cliff() {
    let b = 8;
    let mut cuts = [0u64; 2];
    for (i, d) in [3usize, 4].into_iter().enumerate() {
        let params = gbreg::GbregParams::new(600, b, d).unwrap();
        let mut rng = LaggedFibonacci::seed_from_u64(1989 + d as u64);
        let g = gbreg::sample(&mut rng, &params).unwrap();
        cuts[i] = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
    }
    let [d3, d4] = cuts;
    assert_eq!(
        d4, b as u64,
        "KL should find the planted bisection at degree 4"
    );
    assert!(
        d3 >= 5 * b as u64,
        "KL at degree 3 should be far from planted: got {d3} vs b = {b}"
    );
}

/// Observation 2: compaction improves quality dramatically on sparse
/// (degree-3) instances — the paper reports > 90% improvement on
/// `Gbreg(5000, b, 3)`.
#[test]
fn observation2_compaction_rescues_sparse_instances() {
    let params = gbreg::GbregParams::new(600, 8, 3).unwrap();
    let mut rng = LaggedFibonacci::seed_from_u64(2);
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
    let ckl = best_of(&Pipeline::ckl(), &g, 2, &mut rng).cut();
    assert!(
        (ckl as f64) < 0.5 * kl as f64,
        "CKL ({ckl}) should cut at most half of KL ({kl}) on degree-3 Gbreg"
    );
    let sa_cut = best_of(&sa(), &g, 2, &mut rng).cut();
    let csa_cut = best_of(&Pipeline::compacted(sa()), &g, 2, &mut rng).cut();
    assert!(
        csa_cut <= sa_cut,
        "CSA ({csa_cut}) should not be worse than SA ({sa_cut}) on degree-3 Gbreg"
    );
}

/// Observation 3: compaction helps KL on binary trees (the paper's
/// biggest Table 1 entry, 56%).
#[test]
fn observation3_compaction_on_binary_trees() {
    let g = special::binary_tree(510);
    let mut rng = LaggedFibonacci::seed_from_u64(3);
    let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
    let ckl = best_of(&Pipeline::ckl(), &g, 2, &mut rng).cut();
    assert!(
        ckl < kl,
        "CKL ({ckl}) should beat KL ({kl}) on a binary tree"
    );
}

/// Observation 4a: KL is much faster than SA (the paper: SA up to 20×
/// slower).
#[test]
fn observation4_kl_faster_than_sa() {
    let g = special::grid(16, 16);
    let mut rng = LaggedFibonacci::seed_from_u64(4);
    let t0 = Instant::now();
    let _ = best_of(&KernighanLin::new(), &g, 2, &mut rng);
    let kl_time = t0.elapsed();
    let t1 = Instant::now();
    let _ = best_of(&sa(), &g, 2, &mut rng);
    let sa_time = t1.elapsed();
    assert!(
        sa_time > 2 * kl_time,
        "SA ({sa_time:?}) expected well slower than KL ({kl_time:?})"
    );
}

/// Observation 4b: SA beats KL on binary trees (best of two starts) —
/// one of the two families where the paper's KL loses to SA.
#[test]
fn observation4_sa_wins_on_binary_trees() {
    let g = special::binary_tree(1022);
    let mut sa_wins = 0usize;
    let trials = 3usize;
    for seed in 0..trials as u64 {
        let mut rng = LaggedFibonacci::seed_from_u64(100 + seed);
        let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
        let sa_cut = best_of(&sa(), &g, 2, &mut rng).cut();
        if sa_cut < kl {
            sa_wins += 1;
        }
    }
    assert!(
        sa_wins * 2 >= trials,
        "SA should beat KL on binary trees most of the time ({sa_wins}/{trials})"
    );
}

/// Observation 4c: the ladder graph is the paper's example where KL
/// "is known to fail badly". This reproduces for the era's
/// *pass-limited* KL; interestingly, KL run to a fixpoint escapes (it
/// keeps shifting the cut interval by one pair per pass) — a genuine
/// implementation-sensitivity finding recorded in EXPERIMENTS.md.
#[test]
fn observation4_pass_limited_kl_fails_on_ladders() {
    let g = special::ladder(500);
    let mut rng = LaggedFibonacci::seed_from_u64(100);
    let limited = best_of(&KernighanLin::new().with_max_passes(3), &g, 2, &mut rng).cut();
    let fixpoint = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
    assert!(
        limited >= 10,
        "pass-limited KL should be far from the optimal 2, got {limited}"
    );
    assert!(
        fixpoint <= 4,
        "fixpoint KL should solve the ladder, got {fixpoint}"
    );
}

/// Observation 5: with compaction the quality gap between CKL and CSA
/// closes on sparse planted instances (both near the planted width).
#[test]
fn observation5_compacted_gap_closes() {
    let params = gbreg::GbregParams::new(400, 8, 3).unwrap();
    let mut rng = LaggedFibonacci::seed_from_u64(5);
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let ckl = best_of(&Pipeline::ckl(), &g, 2, &mut rng).cut();
    let csa = best_of(&Pipeline::compacted(sa()), &g, 2, &mut rng).cut();
    let spread = ckl.abs_diff(csa);
    assert!(
        spread <= 16,
        "compacted variants should be close: CKL {ckl} vs CSA {csa}"
    );
}

/// The degree-2 remark: `Gbreg(2n, b, 2)` instances are unions of
/// chordless cycles with optimal bisection ≤ 2, and the algorithms
/// (with compaction) find near-zero cuts.
#[test]
fn degree2_instances_near_zero_cut() {
    let params = gbreg::GbregParams::new(200, 4, 2).unwrap();
    let mut rng = LaggedFibonacci::seed_from_u64(6);
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let ckl = best_of(&Pipeline::ckl(), &g, 2, &mut rng).cut();
    assert!(
        ckl <= 4,
        "CKL on a union of cycles found {ckl}, expected near zero"
    );
}
