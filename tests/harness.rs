//! Integration tests of the experiment harness itself: every
//! experiment runs end to end at smoke scale and produces tables with
//! the paper's structure.

use bisect_bench::experiments::{self, ALL_IDS};
use bisect_bench::profile::Profile;

#[test]
fn all_experiments_run_at_smoke_scale() {
    let profile = Profile::smoke();
    for &id in ALL_IDS {
        let result = experiments::run(id, &profile).expect("known id");
        assert_eq!(result.id, id);
        assert!(!result.tables.is_empty(), "{id} produced no tables");
        for table in &result.tables {
            assert!(!table.rows().is_empty(), "{id} has an empty table");
            for row in table.rows() {
                assert_eq!(row.len(), table.headers().len(), "{id} row width");
            }
        }
    }
}

#[test]
fn experiments_are_deterministic_given_seed() {
    let profile = Profile::smoke();
    // Cuts are deterministic; times are not, so compare the cut
    // columns of a gbreg run (columns 1, 3, 7, 9 of the quad layout).
    let a = experiments::run("gbreg", &profile).unwrap();
    let b = experiments::run("gbreg", &profile).unwrap();
    for (ta, tb) in a.tables.iter().zip(&b.tables) {
        for (ra, rb) in ta.rows().iter().zip(tb.rows()) {
            for col in [0usize, 1, 3, 7, 9] {
                assert_eq!(ra[col], rb[col], "table {} column {col}", ta.title());
            }
        }
    }
}

#[test]
fn seed_changes_results() {
    let base = Profile::smoke();
    let other = Profile { seed: 4242, ..base };
    let a = experiments::run("gbreg", &base).unwrap();
    let b = experiments::run("gbreg", &other).unwrap();
    // At least one cut cell should differ across all tables (different
    // graphs and starts).
    let cells = |r: &experiments::ExperimentResult| -> Vec<String> {
        r.tables
            .iter()
            .flat_map(|t| t.rows().iter().flat_map(|row| row.clone()))
            .collect()
    };
    assert_ne!(cells(&a), cells(&b));
}

#[test]
fn csv_export_is_parseable() {
    let profile = Profile::smoke();
    let result = experiments::run("table1", &profile).unwrap();
    let csv = result.tables[0].to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + result.tables[0].rows().len());
    let header_cols = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), header_cols);
    }
}

#[test]
fn quad_tables_have_paper_columns() {
    let profile = Profile::smoke();
    let result = experiments::run("gbreg", &profile).unwrap();
    let headers = result.tables[0].headers();
    for expected in ["b", "bsa", "bcsa", "bkl", "bckl", "KL impr", "SA spdup"] {
        assert!(
            headers.iter().any(|h| h == expected),
            "missing column `{expected}` in {headers:?}"
        );
    }
}
