//! Cross-crate integration tests: every generator feeding every
//! algorithm, with invariants checked end to end.

use bisect_core::bisector::{best_of, Bisector, RandomBisector};
use bisect_core::exact::minimum_bisection;
use bisect_core::fm::FiducciaMattheyses;
use bisect_core::greedy::GreedyGrowth;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_core::spectral::SpectralBisector;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{g2set, gbreg, gnp, special};
use bisect_graph::Graph;
use rand::SeedableRng;

fn all_algorithms() -> Vec<Box<dyn Bisector>> {
    vec![
        Box::new(RandomBisector::new()),
        Box::new(GreedyGrowth::new()),
        Box::new(KernighanLin::new()),
        Box::new(FiducciaMattheyses::new()),
        Box::new(SimulatedAnnealing::quick()),
        Box::new(Pipeline::ckl()),
        Box::new(Pipeline::compacted(SimulatedAnnealing::quick())),
        Box::new(Pipeline::compacted(FiducciaMattheyses::new())),
        Box::new(Pipeline::multilevel(KernighanLin::new())),
        Box::new(Pipeline::multilevel(FiducciaMattheyses::new())),
        Box::new(SpectralBisector::new()),
    ]
}

fn workloads() -> Vec<(String, Graph)> {
    let mut rng = LaggedFibonacci::seed_from_u64(2024);
    let mut graphs: Vec<(String, Graph)> = vec![
        ("grid 7x8".into(), special::grid(7, 8)),
        ("ladder 20".into(), special::ladder(20)),
        ("binary tree 63".into(), special::binary_tree(63)),
        ("cycle 30".into(), special::cycle(30)),
        ("two cycles".into(), special::cycle_collection(2, 9)),
        ("hypercube 5".into(), special::hypercube(5)),
        ("star 17".into(), special::star(17)),
        ("empty".into(), Graph::empty(12)),
    ];
    graphs.push((
        "gnp 80 deg 3".into(),
        gnp::sample(
            &mut rng,
            &gnp::GnpParams::with_average_degree(80, 3.0).unwrap(),
        ),
    ));
    graphs.push((
        "g2set 80".into(),
        g2set::sample(
            &mut rng,
            &g2set::G2setParams::with_average_degree(80, 3.0, 6).unwrap(),
        ),
    ));
    graphs.push((
        "gbreg 80 d3".into(),
        gbreg::sample(&mut rng, &gbreg::GbregParams::new(80, 4, 3).unwrap()).unwrap(),
    ));
    graphs
}

#[test]
fn every_algorithm_on_every_workload_is_valid() {
    for (wname, g) in workloads() {
        for algo in all_algorithms() {
            let mut rng = LaggedFibonacci::seed_from_u64(77);
            let p = algo.bisect(&g, &mut rng);
            assert!(
                p.is_balanced(&g),
                "{} on {wname}: unbalanced ({} vs {})",
                algo.name(),
                p.count(bisect_core::partition::Side::A),
                p.count(bisect_core::partition::Side::B),
            );
            assert_eq!(
                p.cut(),
                p.recompute_cut(&g),
                "{} on {wname}: inconsistent incremental cut",
                algo.name()
            );
        }
    }
}

#[test]
fn heuristics_never_beat_exact_optimum() {
    let graphs = vec![
        special::grid(4, 5),
        special::ladder(9),
        special::binary_tree(18),
        special::cycle(14),
        special::wheel(12),
    ];
    for g in graphs {
        let optimal = minimum_bisection(&g).unwrap().cut();
        for algo in all_algorithms() {
            let mut rng = LaggedFibonacci::seed_from_u64(5);
            let p = best_of(algo.as_ref(), &g, 3, &mut rng);
            assert!(
                p.cut() >= optimal,
                "{} found {} below optimum {} on {} vertices",
                algo.name(),
                p.cut(),
                optimal,
                g.num_vertices()
            );
        }
    }
}

#[test]
fn local_search_reaches_optimum_on_easy_instances() {
    // KL, FM, CKL should all hit the exact optimum of small structured
    // graphs within a few starts.
    let instances = vec![special::cycle(16), special::grid(4, 4), special::ladder(8)];
    for g in instances {
        let optimal = minimum_bisection(&g).unwrap().cut();
        for algo in [
            Box::new(KernighanLin::new()) as Box<dyn Bisector>,
            Box::new(FiducciaMattheyses::new()),
            Box::new(Pipeline::ckl()),
        ] {
            let mut rng = LaggedFibonacci::seed_from_u64(9);
            let p = best_of(algo.as_ref(), &g, 8, &mut rng);
            assert_eq!(
                p.cut(),
                optimal,
                "{} stuck at {} (optimum {}) on {} vertices",
                algo.name(),
                p.cut(),
                optimal,
                g.num_vertices()
            );
        }
    }
}

#[test]
fn metis_file_roundtrip_preserves_bisection_results() {
    let mut rng = LaggedFibonacci::seed_from_u64(3);
    let params = gbreg::GbregParams::new(60, 4, 3).unwrap();
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let mut buffer = Vec::new();
    bisect_graph::io::write_metis(&g, &mut buffer).unwrap();
    let h = bisect_graph::io::read_metis(buffer.as_slice()).unwrap();
    assert_eq!(g, h);
    // Same seed, same graph → same KL result.
    let a = KernighanLin::new().bisect(&g, &mut LaggedFibonacci::seed_from_u64(4));
    let b = KernighanLin::new().bisect(&h, &mut LaggedFibonacci::seed_from_u64(4));
    assert_eq!(a.cut(), b.cut());
    assert_eq!(a.sides(), b.sides());
}

#[test]
fn facade_crate_reexports_work() {
    // The root `graph-bisect` crate re-exports the three libraries.
    let g = graph_bisect::gen::special::cycle(10);
    let mut rng = <graph_bisect::gen::rng::LaggedFibonacci as rand::SeedableRng>::seed_from_u64(0);
    let p = graph_bisect::core::seed::random_balanced(&g, &mut rng);
    assert_eq!(graph_bisect::graph::stats::DegreeStats::of(&g).max, 2);
    assert!(p.is_balanced(&g));
}

#[test]
fn recursive_placement_pipeline() {
    // The full min-cut placement workflow: geometric netlist →
    // recursive KL → labeled regions.
    use bisect_gen::geometric::{self, GeometricParams};
    let mut rng = LaggedFibonacci::seed_from_u64(12);
    let params = GeometricParams::with_average_degree(400, 6.0).unwrap();
    let g = geometric::sample(&mut rng, &params);
    let placement = Pipeline::kl().partition_into(&g, 8, &mut rng).unwrap();
    let sizes = placement.part_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 400);
    assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 2);
    // Recursive bisection's 8-way cut can't beat 1x the single
    // bisection cut and shouldn't exceed the full edge count.
    assert!(placement.cut(&g) <= g.num_edges() as u64);
}

#[test]
fn degree2_solver_is_lower_bound_for_heuristics() {
    use bisect_core::degree2::bisect_degree2;
    let mut rng = LaggedFibonacci::seed_from_u64(13);
    let params = gbreg::GbregParams::new(100, 4, 2).unwrap();
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let optimal = bisect_degree2(&g).unwrap();
    for algo in all_algorithms() {
        let mut rng = LaggedFibonacci::seed_from_u64(14);
        let p = best_of(algo.as_ref(), &g, 2, &mut rng);
        assert!(
            p.cut() >= optimal.cut(),
            "{} found {} below the degree-2 optimum {}",
            algo.name(),
            p.cut(),
            optimal.cut()
        );
    }
}

#[test]
fn hgr_file_to_netlist_bisection_pipeline() {
    use bisect_core::netlist::{CompactedNetlistFm, NetlistBisection};
    // A netlist in hMETIS format: two 3-cell clusters and a bridge net.
    let hgr = "5 6\n1 2 3\n1 2\n4 5 6\n5 6\n3 4\n";
    let nl = bisect_graph::io::read_hgr(hgr.as_bytes()).unwrap();
    assert_eq!(nl.num_cells(), 6);
    let mut rng = LaggedFibonacci::seed_from_u64(2);
    let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
    assert_eq!(p.cut(), 1);
    // Round-trip and bisect again: identical netlist, identical result.
    let mut buf = Vec::new();
    bisect_graph::io::write_hgr(&nl, &mut buf).unwrap();
    let nl2 = bisect_graph::io::read_hgr(buf.as_slice()).unwrap();
    assert_eq!(nl, nl2);
    let q = NetlistBisection::from_sides(&nl2, p.sides().to_vec()).unwrap();
    assert_eq!(q.cut(), 1);
}

#[test]
fn io_readers_never_panic_on_garbage() {
    // Malformed inputs must produce errors, not panics.
    let inputs = [
        "",
        "\n\n\n",
        "x y z",
        "3 2\n-1\n1\n1\n",
        "3 2 11\n",
        "1 0\n\u{0}\u{ff}\n",
        "9999999999999999999999 1\n",
        "2 1 1\n2\n1\n",
        "# only a comment\n0 0 0 0 0\n",
        "0 18446744073709551616\n",
    ];
    for input in inputs {
        let _ = bisect_graph::io::read_metis(input.as_bytes());
        let _ = bisect_graph::io::read_edge_list(input.as_bytes(), None);
        let _ = bisect_graph::io::read_edge_list(input.as_bytes(), Some(4));
        let _ = bisect_graph::io::read_hgr(input.as_bytes());
    }
}

#[test]
fn planted_bisection_is_respected_by_gbreg() {
    // The planted partition's cut equals b, and heuristics can only do
    // as well or better (b is an upper bound on the width).
    let mut rng = LaggedFibonacci::seed_from_u64(6);
    let params = gbreg::GbregParams::new(120, 6, 4).unwrap();
    let g = gbreg::sample(&mut rng, &params).unwrap();
    let planted = bisect_core::partition::Bisection::planted(&g);
    assert_eq!(planted.cut(), 6);
    let p = best_of(&Pipeline::ckl(), &g, 4, &mut rng);
    assert!(
        p.cut() <= 6 * 3,
        "CKL cut {} far above planted width",
        p.cut()
    );
}
