//! Facade crate re-exporting the graph-bisect workspace.
//!
//! See the crate READMEs and `DESIGN.md` for the full architecture. The
//! three library crates are:
//!
//! * [`graph`] (`bisect-graph`) — graph representation and operations.
//! * [`gen`] (`bisect-gen`) — the paper's random models and special
//!   families.
//! * [`core`] (`bisect-core`) — the bisection heuristics (KL, SA,
//!   compaction, and friends).

#![forbid(unsafe_code)]

pub use bisect_core as core;
pub use bisect_gen as gen;
pub use bisect_graph as graph;
