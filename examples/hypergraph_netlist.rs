//! Hypergraph-native bisection vs the clique approximation.
//!
//! Real netlists have multi-pin nets; the graph abstraction the paper
//! (and this library's core) uses replaces each k-pin net with a clique,
//! which distorts the objective: a cut net is charged up to
//! `⌊k/2⌋·⌈k/2⌉` clique edges instead of 1. This example builds a
//! block-structured netlist with 3-6 pin nets, bisects it both ways —
//! native [`NetlistFm`] on the hypergraph, KL/CKL on the clique
//! expansion — and scores *everything* by the true metric (nets cut).
//!
//! ```text
//! cargo run --release --example hypergraph_netlist
//! ```

use bisect_core::bisector::{best_of, Bisector};
use bisect_core::kl::KernighanLin;
use bisect_core::netlist::{NetlistBisection, NetlistFm};
use bisect_core::pipeline::Pipeline;
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::hypergraph::{Netlist, NetlistBuilder};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A block-structured netlist: `blocks` clusters of `cells` cells;
/// most nets stay inside a block, a few straddle two blocks.
fn synthesize(rng: &mut impl Rng, blocks: usize, cells: usize, nets_per_block: usize) -> Netlist {
    let mut b = NetlistBuilder::new(blocks * cells);
    for block in 0..blocks {
        let base = (block * cells) as u32;
        for _ in 0..nets_per_block {
            let size = rng.gen_range(3..=6usize);
            let mut pins: Vec<u32> = (base..base + cells as u32).collect();
            pins.shuffle(rng);
            b.add_net(&pins[..size]).expect("pins valid");
        }
    }
    // Global nets between adjacent blocks.
    for block in 0..blocks.saturating_sub(1) {
        for _ in 0..3 {
            let size = rng.gen_range(3..=4usize);
            let mut pins = Vec::with_capacity(size);
            for _ in 0..size {
                let which = block + rng.gen_range(0..2usize);
                pins.push((which * cells + rng.gen_range(0..cells)) as u32);
            }
            b.add_net(&pins).expect("pins valid");
        }
    }
    b.build()
}

fn main() {
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    let netlist = synthesize(&mut rng, 8, 40, 60);
    println!(
        "netlist: {} cells, {} nets, average net size {:.2}",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.average_net_size()
    );

    // Native hypergraph FM, best of two starts, scored in nets.
    let fm = NetlistFm::new();
    let native = (0..2)
        .map(|_| fm.bisect(&netlist, &mut rng))
        .min_by_key(NetlistBisection::cut)
        .expect("two starts ran");
    println!("hypergraph FM:        {} nets cut", native.cut());

    // Clique expansion + graph algorithms, re-scored in nets.
    let clique = netlist.to_clique_graph();
    for algo in [
        Box::new(KernighanLin::new()) as Box<dyn Bisector>,
        Box::new(Pipeline::ckl()),
    ] {
        let p = best_of(algo.as_ref(), &clique, 2, &mut rng);
        let rescored =
            NetlistBisection::from_sides(&netlist, p.sides().to_vec()).expect("same cell count");
        println!(
            "clique + {:>4}:        {} nets cut (clique-edge cut was {})",
            algo.name(),
            rescored.cut(),
            p.cut()
        );
    }
    println!(
        "\nThe clique-edge objective overweights big nets; the native\n\
         hypergraph objective is what placement actually minimizes."
    );
}
