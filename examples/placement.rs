//! Min-cut placement: recursive bisection of a geometric "die" into
//! 16 regions — the full VLSI workflow the paper's introduction
//! motivates, extended past a single bisection.
//!
//! Cells are random points in the unit square with mostly-local
//! connectivity (a random geometric graph). Recursive KL bisection
//! assigns each cell a region; the ASCII map shows that the regions
//! come out spatially coherent even though the algorithm never sees the
//! coordinates — it only sees the graph.
//!
//! ```text
//! cargo run --release --example placement
//! ```

use bisect_core::pipeline::Pipeline;
use bisect_gen::geometric::{self, GeometricParams};
use bisect_gen::rng::LaggedFibonacci;
use rand::SeedableRng;

fn main() {
    let mut rng = LaggedFibonacci::seed_from_u64(7);
    let params = GeometricParams::with_average_degree(1200, 7.0).expect("parameters feasible");
    let (netlist, points) = geometric::sample_with_points(&mut rng, &params);
    println!(
        "die: {} cells, {} local nets, average degree {:.2}",
        netlist.num_vertices(),
        netlist.num_edges(),
        netlist.average_degree()
    );

    let parts = 16usize;
    let placer = Pipeline::kl();
    let placement = placer
        .partition_into(&netlist, parts, &mut rng)
        .expect("16 is a power of two");
    println!(
        "{}-way recursive KL bisection: {} nets cross region boundaries",
        parts,
        placement.cut(&netlist)
    );
    let sizes = placement.part_sizes();
    println!(
        "region occupancy: min {} / max {} cells",
        sizes.iter().min().expect("nonempty"),
        sizes.iter().max().expect("nonempty")
    );

    // ASCII die map: each character cell shows the region id (0-f) of
    // the cell nearest to it (blank if none nearby).
    const COLS: usize = 64;
    const ROWS: usize = 28;
    let mut canvas = vec![vec![' '; COLS]; ROWS];
    for (i, &(x, y)) in points.iter().enumerate() {
        let c = ((x * COLS as f64) as usize).min(COLS - 1);
        let r = ((y * ROWS as f64) as usize).min(ROWS - 1);
        canvas[r][c] =
            char::from_digit(placement.part(i as u32), 16).expect("16 parts fit one hex digit");
    }
    println!("\ndie map (each digit = region of a cell):");
    for row in canvas {
        println!("{}", row.into_iter().collect::<String>());
    }
}
