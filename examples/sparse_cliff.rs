//! Observation 1 in miniature: the degree-3 → degree-4 quality cliff.
//!
//! On `Gbreg(2n, b, 3)` plain KL and SA return cuts tens of times
//! larger than the planted bisection; on `Gbreg(2n, b, 4)` they find
//! the planted bisection. Compaction (CKL/CSA) repairs most of the
//! degree-3 gap — this is the paper's headline result.
//!
//! ```text
//! cargo run --release --example sparse_cliff
//! ```

use bisect_core::bisector::best_of;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_gen::gbreg::{self, GbregParams};
use bisect_gen::rng::LaggedFibonacci;
use rand::SeedableRng;

fn main() {
    let num_vertices = 1000;
    let b = 8;
    println!("Gbreg({num_vertices}, b={b}, d): planted bisection width {b}\n");
    println!(
        "{:>3} {:>8} {:>8} {:>8} {:>8}   (cut found, best of 2 starts)",
        "d", "KL", "CKL", "SA", "CSA"
    );

    for d in [3usize, 4] {
        let params = GbregParams::new(num_vertices, b, d).expect("parameters feasible");
        let mut rng = LaggedFibonacci::seed_from_u64(7 + d as u64);
        let g = gbreg::sample(&mut rng, &params).expect("construction succeeds");

        let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng).cut();
        let ckl = best_of(&Pipeline::ckl(), &g, 2, &mut rng).cut();
        let sa = best_of(&SimulatedAnnealing::quick(), &g, 2, &mut rng).cut();
        let csa = best_of(
            &Pipeline::compacted(SimulatedAnnealing::quick()),
            &g,
            2,
            &mut rng,
        )
        .cut();
        println!("{d:>3} {kl:>8} {ckl:>8} {sa:>8} {csa:>8}");
    }

    println!(
        "\nExpected shape (paper, §VI): at d=3 the uncompacted cuts are many\n\
         times the planted width and compaction removes most of the gap;\n\
         at d=4 every algorithm finds the planted bisection."
    );
}
