//! Quickstart: bisect a graph with every algorithm in the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bisect_core::bisector::{best_of, Bisector};
use bisect_core::exact::minimum_bisection;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::special;
use rand::SeedableRng;

fn main() {
    // A 16×16 grid: 256 vertices, bisection width 16 (the straight cut
    // down the middle).
    let g = special::grid(16, 16);
    println!(
        "graph: {} vertices, {} edges, average degree {:.2}",
        g.num_vertices(),
        g.num_edges(),
        g.average_degree()
    );

    // The paper's four algorithms, run with its protocol: best of two
    // random starts.
    let algorithms: Vec<Box<dyn Bisector>> = vec![
        Box::new(KernighanLin::new()),
        Box::new(SimulatedAnnealing::new()),
        Box::new(Pipeline::ckl()),
        Box::new(Pipeline::csa()),
    ];
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    for algo in &algorithms {
        let started = std::time::Instant::now();
        let p = best_of(algo.as_ref(), &g, 2, &mut rng);
        println!(
            "{:>4}: cut {:>3} in {:>8.2?}   (balanced: {})",
            algo.name(),
            p.cut(),
            started.elapsed(),
            p.is_balanced(&g)
        );
    }

    // Ground truth on a small instance for calibration.
    let small = special::grid(4, 4);
    let optimal = minimum_bisection(&small).expect("16 vertices is small enough");
    println!("exact optimum of the 4x4 grid: {}", optimal.cut());
}
