//! A step-by-step tour of the compaction heuristic (§V of the paper),
//! driving each of its five steps through the public API, then showing
//! that one [`Pipeline`] call replays the exact same five steps.
//!
//! ```text
//! cargo run --release --example compaction_tour
//! ```

use bisect_core::bisector::{Bisector, Refiner};
use bisect_core::kl::KernighanLin;
use bisect_core::partition::{rebalance, Bisection};
use bisect_core::pipeline::Pipeline;
use bisect_core::seed;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::special;
use bisect_graph::{contraction, matching};
use rand::SeedableRng;

fn main() {
    // A binary tree — the family where compaction helps KL the most
    // (56% average improvement in Table 1).
    let g = special::binary_tree(510);
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    println!(
        "G: {} vertices, {} edges, average degree {:.2}",
        g.num_vertices(),
        g.num_edges(),
        g.average_degree()
    );

    // Step 1: form a maximum random matching M of G.
    let m = matching::random_maximal(&g, &mut rng);
    println!("step 1: random maximal matching of {} pairs", m.len());

    // Step 2: contract the matching to form G'.
    let c = contraction::contract_matching(&g, &m);
    let coarse = c.coarse();
    println!(
        "step 2: G' has {} vertices, {} edges, average degree {:.2} (up from {:.2})",
        coarse.num_vertices(),
        coarse.num_edges(),
        coarse.average_degree(),
        g.average_degree()
    );

    // Step 3: run the bisection heuristic on G'.
    let kl = KernighanLin::new();
    let coarse_init = seed::weight_balanced_random(coarse, &mut rng);
    let coarse_bisection = kl.refine(coarse, coarse_init, &mut rng);
    println!("step 3: KL on G' found cut {}", coarse_bisection.cut());

    // Step 4: uncompact, producing an initial bisection of G.
    let mut projected = Bisection::from_sides(&g, c.project_sides(coarse_bisection.sides()))
        .expect("projection covers every vertex");
    rebalance(&g, &mut projected);
    println!(
        "step 4: projected to G with cut {} (weighted coarse cut projects exactly)",
        projected.cut()
    );

    // Step 5: refine on G from the projected start.
    let compacted = kl.refine(&g, projected, &mut rng);
    println!("step 5: final CKL cut {}", compacted.cut());

    // Compare with KL from a plain random start.
    let plain_init = seed::random_balanced(&g, &mut rng);
    let plain = kl.refine(&g, plain_init, &mut rng);
    println!("\nplain KL from a random start: cut {}", plain.cut());
    println!("compacted KL:                 cut {}", compacted.cut());

    // The packaged pipeline runs the same five steps — same rng draw
    // order, so from the same seed it reproduces the manual tour bit
    // for bit.
    let ckl = Pipeline::ckl();
    let mut fresh = LaggedFibonacci::seed_from_u64(1989);
    let packaged = ckl.bisect(&g, &mut fresh);
    println!(
        "\npipeline [{}] in one call: cut {}",
        ckl.describe(),
        packaged.cut()
    );
    assert_eq!(
        packaged.sides(),
        compacted.sides(),
        "the pipeline replays the manual steps exactly"
    );
}
