//! VLSI placement scenario — the application the paper's introduction
//! motivates ("graph bisection has applications in VLSI placement and
//! routing problems").
//!
//! A synthetic standard-cell netlist is modeled as a graph: cells are
//! vertices, two-point nets are edges. The circuit is built from
//! functional blocks (dense internal wiring) plus sparse global wiring
//! between blocks — the structure min-cut placement exploits. Bisecting
//! the netlist is the first step of min-cut placement: the cut counts
//! the wires that must cross the chip's main channel.
//!
//! The example also round-trips the netlist through the METIS file
//! format to show the I/O path.
//!
//! ```text
//! cargo run --release --example vlsi_netlist
//! ```

use bisect_core::bisector::{best_of, Bisector};
use bisect_core::kl::KernighanLin;
use bisect_core::partition::Side;
use bisect_core::pipeline::Pipeline;
use bisect_core::spectral::SpectralBisector;
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::{io, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a block-structured netlist: `blocks` functional blocks of
/// `cells_per_block` cells. Within a block, each cell wires to a few
/// random earlier cells (a connected, locally dense net structure);
/// between blocks, a small number of global nets.
fn synthesize_netlist(
    rng: &mut impl Rng,
    blocks: usize,
    cells_per_block: usize,
    global_nets: usize,
) -> bisect_graph::Graph {
    let n = blocks * cells_per_block;
    let mut builder = GraphBuilder::new(n);
    for block in 0..blocks {
        let base = block * cells_per_block;
        for cell in 1..cells_per_block {
            // Each cell connects to 1-3 earlier cells in its block.
            let fanin = rng.gen_range(1..=3usize).min(cell);
            let mut targets: Vec<usize> = (0..cell).collect();
            targets.shuffle(rng);
            for &t in targets.iter().take(fanin) {
                let _ = builder.add_edge((base + cell) as VertexId, (base + t) as VertexId);
            }
        }
    }
    let mut wired = 0;
    while wired < global_nets {
        let a = rng.gen_range(0..blocks);
        let b = rng.gen_range(0..blocks);
        if a == b {
            continue;
        }
        let u = (a * cells_per_block + rng.gen_range(0..cells_per_block)) as VertexId;
        let v = (b * cells_per_block + rng.gen_range(0..cells_per_block)) as VertexId;
        if builder.add_edge(u, v).is_ok() {
            wired += 1;
        }
    }
    builder.build()
}

fn main() {
    let mut rng = LaggedFibonacci::seed_from_u64(42);
    // 8 blocks × 64 cells; 40 global nets. A perfect 4-block/4-block
    // split cuts only the global nets that cross it.
    let netlist = synthesize_netlist(&mut rng, 8, 64, 40);
    println!(
        "netlist: {} cells, {} two-point nets, average degree {:.2}",
        netlist.num_vertices(),
        netlist.num_edges(),
        netlist.average_degree()
    );

    // Round-trip through the METIS format (what you would hand to an
    // external partitioner).
    let mut file = Vec::new();
    io::write_metis(&netlist, &mut file).expect("in-memory write succeeds");
    let netlist = io::read_metis(file.as_slice()).expect("roundtrip parses");

    let algorithms: Vec<Box<dyn Bisector>> = vec![
        Box::new(KernighanLin::new()),
        Box::new(Pipeline::ckl()),
        Box::new(SpectralBisector::new()),
    ];
    for algo in &algorithms {
        let started = std::time::Instant::now();
        let p = best_of(algo.as_ref(), &netlist, 2, &mut rng);
        println!(
            "{:>8}: {} wires cross the channel ({} | {} cells) in {:.2?}",
            algo.name(),
            p.cut(),
            p.count(Side::A),
            p.count(Side::B),
            started.elapsed()
        );
    }
}
